//! Request routing across the shards of a [`ClusterEngine`]: the pluggable
//! front-door brain that decides *which* engine a request lands on, the
//! same way [`SchedulerPolicy`](super::SchedulerPolicy) decides *when* it
//! runs once there.
//!
//! [`ClusterEngine`]: super::ClusterEngine

use std::collections::BTreeMap;
use std::fmt;
use std::str::FromStr;

use super::queue::ServingRequest;

/// Snapshot of one shard's load, handed to routing policies per request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardView {
    /// The shard's index in the cluster (stable for the cluster's life).
    pub shard_id: usize,
    /// Requests waiting in the shard's arrival queue.
    pub pending: usize,
    /// Requests currently decoding on the shard.
    pub running: usize,
    /// Final-context tokens of everything queued on the shard — the KV
    /// work admission has not placed yet.
    pub queued_tokens: usize,
    /// Tokens' worth of KV pages mapped by the shard's *running*
    /// requests. Retained pages of queued preemption victims are
    /// excluded — those owners already count toward
    /// [`queued_tokens`](Self::queued_tokens) at full final context, and
    /// billing their pages too would penalize exactly the shards where
    /// retention paid off.
    pub occupied_tokens: usize,
    /// Batch slots the shard still has free.
    pub free_slots: usize,
}

impl ShardView {
    /// The load metric the built-in policies compare shards by: queued
    /// tokens (backlog) plus occupied KV tokens (work already placed).
    #[must_use]
    pub fn load(&self) -> usize {
        self.queued_tokens + self.occupied_tokens
    }
}

/// A routing policy: picks the shard a request is enqueued on.
///
/// The cluster calls [`route`](Self::route) once per request, before the
/// request enters any shard's queue; the returned index is clamped to the
/// shard count, so a policy cannot route off the end of the cluster, only
/// route badly. Routing is the *only* placement decision a policy makes —
/// work stealing, when enabled, is the cluster's own deterministic
/// rebalancing and never consults the router.
///
/// Routers must be [`Send`] so a whole
/// [`ClusterEngine`](super::ClusterEngine) (which steps its shards on
/// scoped worker threads) can move between threads. Routing itself always
/// runs on the coordinator thread, between shard steps — the router never
/// crosses a thread boundary mid-decision.
pub trait RoutingPolicy: fmt::Debug + Send {
    /// Stable, human-readable policy name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Whether [`route`](Self::route) wants the request's prompt-page hash
    /// chain. Computing the chain walks the whole prompt, so the cluster
    /// only does it for policies that return `true` here.
    fn wants_page_keys(&self) -> bool {
        false
    }

    /// The shard `req` should be enqueued on. `page_keys` is the request's
    /// position-chained prompt-page hash chain
    /// ([`ServingRequest::page_keys`]) when
    /// [`wants_page_keys`](Self::wants_page_keys) is `true`, empty
    /// otherwise. `shards` is never empty and is indexed by `shard_id`.
    fn route(&mut self, req: &ServingRequest, page_keys: &[u64], shards: &[ShardView]) -> usize;
}

/// Strict rotation: request `k` lands on shard `k % shards`. Ignores load
/// entirely — the baseline every smarter policy is measured against, and
/// (with one shard) the identity routing the cluster goldens pin.
#[derive(Debug, Clone, Copy, Default)]
pub struct RoundRobin {
    next: usize,
}

impl RoutingPolicy for RoundRobin {
    fn name(&self) -> &'static str {
        "round-robin"
    }

    fn route(&mut self, _req: &ServingRequest, _keys: &[u64], shards: &[ShardView]) -> usize {
        let shard = self.next % shards.len();
        self.next = (self.next + 1) % shards.len();
        shard
    }
}

/// Least-loaded-first: route to the shard with the smallest
/// [`ShardView::load`] (queued tokens + occupied KV tokens), breaking ties
/// by the lowest shard id so placement is deterministic.
#[derive(Debug, Clone, Copy, Default)]
pub struct LeastLoaded;

impl LeastLoaded {
    /// The least-loaded shard, lowest id first among equals — shared with
    /// [`PrefixAffinity`]'s fallback so "least loaded" means one thing.
    pub(crate) fn pick(shards: &[ShardView]) -> usize {
        shards
            .iter()
            .min_by_key(|s| (s.load(), s.shard_id))
            .map_or(0, |s| s.shard_id)
    }
}

impl RoutingPolicy for LeastLoaded {
    fn name(&self) -> &'static str {
        "least-loaded"
    }

    fn route(&mut self, _req: &ServingRequest, _keys: &[u64], shards: &[ShardView]) -> usize {
        Self::pick(shards)
    }
}

/// Prefix-affinity routing: requests whose prompts share a leading page
/// land on the same shard, so each shard's *independent* prefix cache sees
/// every repeat of "its" prompts and the cluster recovers the sharing a
/// random split would destroy.
///
/// The routing key is the request's first prompt-page hash
/// (`page_keys[0]`): chained hashing makes two requests agree there
/// exactly when they share at least one full page of leading prompt
/// tokens — the same condition under which the
/// [`KvPager`](super::KvPager) could share pages between them. The first
/// request of a prefix binds it to the then-least-loaded shard; every
/// later request with that prefix follows. Requests with no full prompt
/// page fall back to least-loaded.
#[derive(Debug, Clone, Default)]
pub struct PrefixAffinity {
    /// First-page hash → the shard its prefix is bound to.
    bindings: BTreeMap<u64, usize>,
}

impl RoutingPolicy for PrefixAffinity {
    fn name(&self) -> &'static str {
        "prefix-affinity"
    }

    fn wants_page_keys(&self) -> bool {
        true
    }

    fn route(&mut self, _req: &ServingRequest, keys: &[u64], shards: &[ShardView]) -> usize {
        let Some(&first) = keys.first() else {
            return LeastLoaded::pick(shards);
        };
        *self
            .bindings
            .entry(first)
            .or_insert_with(|| LeastLoaded::pick(shards))
    }
}

/// The built-in routing policies, nameable from CLI flags and bench
/// configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RoutingKind {
    /// [`RoundRobin`].
    RoundRobin,
    /// [`LeastLoaded`].
    LeastLoaded,
    /// [`PrefixAffinity`].
    PrefixAffinity,
}

impl RoutingKind {
    /// Every built-in routing policy, in presentation order.
    #[must_use]
    pub fn all() -> [Self; 3] {
        [Self::RoundRobin, Self::LeastLoaded, Self::PrefixAffinity]
    }

    /// The policy's stable name (matches [`RoutingPolicy::name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::RoundRobin => "round-robin",
            Self::LeastLoaded => "least-loaded",
            Self::PrefixAffinity => "prefix-affinity",
        }
    }

    /// Instantiates the policy with its defaults.
    #[must_use]
    pub fn build(self) -> Box<dyn RoutingPolicy> {
        match self {
            Self::RoundRobin => Box::new(RoundRobin::default()),
            Self::LeastLoaded => Box::new(LeastLoaded),
            Self::PrefixAffinity => Box::new(PrefixAffinity::default()),
        }
    }
}

impl fmt::Display for RoutingKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for RoutingKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "rr" | "round-robin" => Ok(Self::RoundRobin),
            "least" | "least-loaded" => Ok(Self::LeastLoaded),
            "affinity" | "prefix-affinity" => Ok(Self::PrefixAffinity),
            other => Err(format!(
                "unknown routing '{other}' (expected rr | least | affinity)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(loads: &[(usize, usize)]) -> Vec<ShardView> {
        loads
            .iter()
            .enumerate()
            .map(|(shard_id, &(queued_tokens, occupied_tokens))| ShardView {
                shard_id,
                pending: usize::from(queued_tokens > 0),
                running: usize::from(occupied_tokens > 0),
                queued_tokens,
                occupied_tokens,
                free_slots: 1,
            })
            .collect()
    }

    #[test]
    fn round_robin_rotates() {
        let mut rr = RoundRobin::default();
        let shards = views(&[(0, 0), (0, 0), (0, 0)]);
        let req = ServingRequest::new(0, 16, 1);
        let picks: Vec<usize> = (0..5).map(|_| rr.route(&req, &[], &shards)).collect();
        assert_eq!(picks, vec![0, 1, 2, 0, 1]);
    }

    #[test]
    fn least_loaded_picks_min_load_lowest_id_first() {
        let mut ll = LeastLoaded;
        let req = ServingRequest::new(0, 16, 1);
        assert_eq!(
            ll.route(&req, &[], &views(&[(100, 0), (0, 40), (0, 90)])),
            1
        );
        // Ties go to the lowest shard id.
        assert_eq!(ll.route(&req, &[], &views(&[(50, 0), (0, 50), (0, 0)])), 2);
        assert_eq!(ll.route(&req, &[], &views(&[(0, 0), (0, 0)])), 0);
    }

    #[test]
    fn prefix_affinity_binds_first_page_keys_to_shards() {
        let mut pa = PrefixAffinity::default();
        assert!(pa.wants_page_keys());
        let req = ServingRequest::new(0, 32, 1);
        let shards = views(&[(80, 0), (0, 0)]);
        // First sight of a prefix binds it to the least-loaded shard...
        assert_eq!(pa.route(&req, &[7, 8], &shards), 1);
        // ...and repeats follow the binding even once that shard is busy.
        let busy = views(&[(0, 0), (500, 500)]);
        assert_eq!(pa.route(&req, &[7, 9], &busy), 1);
        // A different prefix binds independently; no keys falls back.
        assert_eq!(pa.route(&req, &[42], &busy), 0);
        assert_eq!(pa.route(&req, &[], &busy), 0);
    }

    #[test]
    fn routing_kind_round_trips_through_names() {
        for kind in RoutingKind::all() {
            assert_eq!(kind.name().parse::<RoutingKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
        }
        assert!("nope".parse::<RoutingKind>().is_err());
        assert_eq!("rr".parse::<RoutingKind>(), Ok(RoutingKind::RoundRobin));
        assert_eq!("least".parse::<RoutingKind>(), Ok(RoutingKind::LeastLoaded));
        assert_eq!(
            "affinity".parse::<RoutingKind>(),
            Ok(RoutingKind::PrefixAffinity)
        );
    }
}
