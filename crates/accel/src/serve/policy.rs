//! The pluggable scheduling surface: policies choose *which* request to
//! admit or evict; the engine enforces the admission invariants.

use std::fmt;
use std::str::FromStr;

/// Snapshot of one queued request, handed to policies during admission.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingView {
    /// The request's id.
    pub id: u64,
    /// Caller-assigned priority (higher is more urgent).
    pub priority: u8,
    /// Originating client.
    pub client_id: u64,
    /// Engine-assigned enqueue order — the universal tie-break.
    pub arrival_seq: u64,
    /// Steps the request has been schedulable without running.
    pub waited_steps: u64,
    /// Tokens still to generate (less than the target after a preemption).
    pub remaining_tokens: usize,
    /// Context length at retirement — what admission must budget for.
    pub final_context: usize,
    /// Step the request first became schedulable. Unlike
    /// [`waited_steps`](Self::waited_steps) (which resets on eviction so
    /// aging never credits time spent running), this is the fixed origin
    /// SLO deadlines are measured from.
    pub enqueued_at: usize,
    /// Step of the request's most recent generated token, if any (a
    /// preempted request re-queues with its decode history intact).
    pub last_token_at: Option<usize>,
    /// Time-to-first-token deadline in steps from
    /// [`enqueued_at`](Self::enqueued_at), if the request carries one.
    pub ttft_deadline: Option<u64>,
    /// Inter-token deadline: maximum steps between consecutive generated
    /// tokens, if the request carries one.
    pub itl_deadline: Option<u64>,
}

/// Snapshot of one running request, handed to policies when choosing
/// admissions and preemption victims.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RunningView {
    /// The request's id.
    pub id: u64,
    /// Caller-assigned priority (higher is more urgent).
    pub priority: u8,
    /// Originating client.
    pub client_id: u64,
    /// Engine-assigned enqueue order.
    pub arrival_seq: u64,
    /// Step of the request's (most recent) admission.
    pub admitted_at: usize,
    /// Tokens still to generate.
    pub remaining_tokens: usize,
    /// Current context length.
    pub context: usize,
    /// Context length at retirement.
    pub final_context: usize,
    /// Step the request first became schedulable — the origin SLO
    /// deadlines are measured from.
    pub enqueued_at: usize,
    /// Step of the request's most recent generated token, if any.
    pub last_token_at: Option<usize>,
    /// Time-to-first-token deadline in steps from
    /// [`enqueued_at`](Self::enqueued_at), if the request carries one.
    pub ttft_deadline: Option<u64>,
    /// Inter-token deadline: maximum steps between consecutive generated
    /// tokens, if the request carries one.
    pub itl_deadline: Option<u64>,
}

/// The deadline a request is currently racing, as an absolute engine step:
/// first-token requests race `enqueued_at + ttft − 1` (TTFT counts the
/// enqueue step itself), decoding requests race `last_token + itl`.
/// `None` means no applicable deadline — the request can wait forever.
///
/// Shared by both view types so pending and running requests compare on
/// one urgency scale; [`SloAware`] subtracts the current step to get
/// slack.
fn due_step(
    enqueued_at: usize,
    last_token_at: Option<usize>,
    ttft: Option<u64>,
    itl: Option<u64>,
) -> Option<i64> {
    match last_token_at {
        None => ttft.map(|d| enqueued_at as i64 + d as i64 - 1),
        Some(t) => itl.map(|d| t as i64 + d as i64),
    }
}

impl PendingView {
    /// Steps of slack until this request's next applicable deadline at
    /// `step` (negative once blown); `i64::MAX` when no deadline applies.
    #[must_use]
    pub fn slo_slack(&self, step: u64) -> i64 {
        due_step(
            self.enqueued_at,
            self.last_token_at,
            self.ttft_deadline,
            self.itl_deadline,
        )
        .map_or(i64::MAX, |due| due - step as i64)
    }
}

impl RunningView {
    /// Steps of slack until this request's next applicable deadline at
    /// `step` (negative once blown); `i64::MAX` when no deadline applies.
    #[must_use]
    pub fn slo_slack(&self, step: u64) -> i64 {
        due_step(
            self.enqueued_at,
            self.last_token_at,
            self.ttft_deadline,
            self.itl_deadline,
        )
        .map_or(i64::MAX, |due| due - step as i64)
    }
}

/// A scheduling policy: the ordering brain of the serving engine.
///
/// The engine asks the policy *which* queued request to admit next
/// ([`pick_next`](Self::pick_next)) and, when that candidate does not fit
/// and preemption is enabled, *which* running request to evict for it
/// ([`pick_victim`](Self::pick_victim)). The engine itself enforces the
/// invariants — the batch never exceeds its slot limit or its KV page
/// budget, and a candidate that still does not fit ends admission for the
/// step — so a policy cannot corrupt the batch, only order it badly.
///
/// Policies must be [`Send`]: a [`ClusterEngine`](super::ClusterEngine)
/// steps its shards on scoped worker threads, and each shard's policy
/// travels with it. Policies only ever run on one thread at a time (the
/// engine holds them by `&mut`), so `Send` — not `Sync` — is the bound,
/// and any policy made of owned data satisfies it automatically.
///
/// # Example
///
/// A custom policy is any `Debug + Send` type implementing this trait;
/// install it with
/// [`ServingEngineBuilder::policy_boxed`](super::ServingEngineBuilder::policy_boxed).
/// Longest-job-first, in full:
///
/// ```
/// use topick_accel::{
///     AccelConfig, AccelMode, PendingView, RunningView, SchedulerPolicy, ServingEngine,
///     ServingRequest,
/// };
///
/// #[derive(Debug)]
/// struct LongestJobFirst;
///
/// impl SchedulerPolicy for LongestJobFirst {
///     fn name(&self) -> &'static str {
///         "longest-job-first"
///     }
///
///     fn pick_next(
///         &mut self,
///         pending: &[PendingView],
///         _running: &[RunningView],
///         _step: u64,
///     ) -> Option<usize> {
///         pending
///             .iter()
///             .enumerate()
///             .max_by_key(|(_, p)| (p.remaining_tokens, std::cmp::Reverse(p.arrival_seq)))
///             .map(|(i, _)| i)
///     }
/// }
///
/// let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
/// let mut engine = ServingEngine::builder(accel)
///     .heads(2)
///     .max_batch(1)
///     .policy_boxed(Box::new(LongestJobFirst))
///     .build();
/// engine.enqueue(ServingRequest::new(0, 16, 1))?;
/// engine.enqueue(ServingRequest::new(1, 16, 4))?;
/// let report = engine.run_to_completion(16)?;
/// // The longer request 1 ran (and finished) first.
/// assert_eq!(report.requests[0].id, 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub trait SchedulerPolicy: fmt::Debug + Send {
    /// Stable, human-readable policy name (used in reports and benches).
    fn name(&self) -> &'static str;

    /// Index into `pending` of the request to admit next, or `None` to
    /// stop admitting for this step. `pending` is never empty and holds
    /// only schedulable requests, in arrival order.
    fn pick_next(
        &mut self,
        pending: &[PendingView],
        running: &[RunningView],
        step: u64,
    ) -> Option<usize>;

    /// Index into `running` of a victim to evict so `candidate` can be
    /// admitted, or `None` to decline preemption (the default). Called
    /// only when preemption is enabled and `candidate` does not fit.
    fn pick_victim(
        &mut self,
        candidate: &PendingView,
        running: &[RunningView],
        step: u64,
    ) -> Option<usize> {
        let _ = (candidate, running, step);
        None
    }
}

/// First-in-first-out with head-of-line blocking — bit-for-bit the
/// pre-redesign engine's schedule. Never preempts.
#[derive(Debug, Clone, Copy, Default)]
pub struct Fifo;

impl SchedulerPolicy for Fifo {
    fn name(&self) -> &'static str {
        "fifo"
    }

    fn pick_next(
        &mut self,
        pending: &[PendingView],
        _running: &[RunningView],
        _step: u64,
    ) -> Option<usize> {
        // Oldest arrival; pending is in arrival order, so index 0.
        (!pending.is_empty()).then_some(0)
    }
}

/// Highest effective priority first, where waiting raises priority: a
/// request's effective priority is `priority + waited_steps / aging_steps`,
/// so low-priority work cannot starve forever. Preempts strictly
/// lower-priority running requests when allowed.
#[derive(Debug, Clone, Copy)]
pub struct PriorityAging {
    /// Queue steps that add one effective priority level.
    pub aging_steps: u64,
}

impl PriorityAging {
    /// A policy where waiting `aging_steps` steps is worth one priority
    /// level (clamped to at least 1).
    #[must_use]
    pub fn new(aging_steps: u64) -> Self {
        Self {
            aging_steps: aging_steps.max(1),
        }
    }

    fn effective(&self, p: &PendingView) -> u64 {
        u64::from(p.priority) + p.waited_steps / self.aging_steps
    }
}

impl Default for PriorityAging {
    fn default() -> Self {
        Self::new(8)
    }
}

impl SchedulerPolicy for PriorityAging {
    fn name(&self) -> &'static str {
        "priority-aging"
    }

    fn pick_next(
        &mut self,
        pending: &[PendingView],
        _running: &[RunningView],
        _step: u64,
    ) -> Option<usize> {
        // Max effective priority; ties go to the oldest arrival, which
        // `max_by_key` yields because pending is in arrival order and it
        // keeps the first of equals under a (key, Reverse(seq)) ordering.
        pending
            .iter()
            .enumerate()
            .max_by_key(|(_, p)| (self.effective(p), std::cmp::Reverse(p.arrival_seq)))
            .map(|(i, _)| i)
    }

    fn pick_victim(
        &mut self,
        candidate: &PendingView,
        running: &[RunningView],
        _step: u64,
    ) -> Option<usize> {
        // Evict the lowest-priority running request, youngest first among
        // equals, and only for a strictly higher-priority candidate (raw
        // priorities: aging gets work *into* the queue order, but must not
        // let an aged background job evict on-par foreground work).
        let (slot, victim) = running
            .iter()
            .enumerate()
            .min_by_key(|(_, r)| (r.priority, std::cmp::Reverse(r.arrival_seq)))?;
        (victim.priority < candidate.priority).then_some(slot)
    }
}

/// Shortest job first, by remaining tokens to generate. With preemption it
/// becomes shortest-remaining-processing-time: a long-running request may
/// be evicted for a strictly shorter newcomer.
#[derive(Debug, Clone, Copy, Default)]
pub struct ShortestJobFirst;

impl SchedulerPolicy for ShortestJobFirst {
    fn name(&self) -> &'static str {
        "shortest-job-first"
    }

    fn pick_next(
        &mut self,
        pending: &[PendingView],
        _running: &[RunningView],
        _step: u64,
    ) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.remaining_tokens, p.arrival_seq))
            .map(|(i, _)| i)
    }

    fn pick_victim(
        &mut self,
        candidate: &PendingView,
        running: &[RunningView],
        _step: u64,
    ) -> Option<usize> {
        let (slot, victim) = running
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| (r.remaining_tokens, r.arrival_seq))?;
        (victim.remaining_tokens > candidate.remaining_tokens).then_some(slot)
    }
}

/// Fair slots per client: admit from the client holding the fewest batch
/// slots. Preemption rebalances only when it strictly improves fairness
/// (the victim's client holds at least two more slots than the
/// candidate's).
#[derive(Debug, Clone, Copy, Default)]
pub struct FairRoundRobin;

impl FairRoundRobin {
    fn client_slots(running: &[RunningView], client: u64) -> usize {
        running.iter().filter(|r| r.client_id == client).count()
    }
}

impl SchedulerPolicy for FairRoundRobin {
    fn name(&self) -> &'static str {
        "fair-round-robin"
    }

    fn pick_next(
        &mut self,
        pending: &[PendingView],
        running: &[RunningView],
        _step: u64,
    ) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (Self::client_slots(running, p.client_id), p.arrival_seq))
            .map(|(i, _)| i)
    }

    fn pick_victim(
        &mut self,
        candidate: &PendingView,
        running: &[RunningView],
        _step: u64,
    ) -> Option<usize> {
        // From the most-over-served client, evict the member with the most
        // work left; only worthwhile if it strictly improves fairness.
        let cand_slots = Self::client_slots(running, candidate.client_id);
        let (slot, victim) = running.iter().enumerate().max_by_key(|(_, r)| {
            (
                Self::client_slots(running, r.client_id),
                r.remaining_tokens,
                r.arrival_seq,
            )
        })?;
        (Self::client_slots(running, victim.client_id) >= cand_slots + 2).then_some(slot)
    }
}

/// Earliest-deadline-first admission with slack-based preemption: the
/// SLO-aware scheduler the deadline layer exists for.
///
/// Every request is placed on one urgency scale — steps of *slack* until
/// its next applicable deadline (TTFT before the first token, ITL after;
/// see [`PendingView::slo_slack`]). Admission picks the least-slack
/// queued request (oldest arrival among equals), so deadline-less
/// requests (infinite slack) degrade to FIFO and a mixed workload is
/// served EDF-first, FIFO-second. Eviction targets the *most*-slack
/// running request (most remaining work, then youngest, among equals) and
/// only fires when the victim has **strictly** more slack than the
/// candidate — a workload with no deadlines anywhere never preempts, and
/// two equally late requests never thrash by evicting each other.
#[derive(Debug, Clone, Copy, Default)]
pub struct SloAware;

impl SchedulerPolicy for SloAware {
    fn name(&self) -> &'static str {
        "slo-aware"
    }

    fn pick_next(
        &mut self,
        pending: &[PendingView],
        _running: &[RunningView],
        step: u64,
    ) -> Option<usize> {
        pending
            .iter()
            .enumerate()
            .min_by_key(|(_, p)| (p.slo_slack(step), p.arrival_seq))
            .map(|(i, _)| i)
    }

    fn pick_victim(
        &mut self,
        candidate: &PendingView,
        running: &[RunningView],
        step: u64,
    ) -> Option<usize> {
        let (slot, victim) = running
            .iter()
            .enumerate()
            .max_by_key(|(_, r)| (r.slo_slack(step), r.remaining_tokens, r.arrival_seq))?;
        (victim.slo_slack(step) > candidate.slo_slack(step)).then_some(slot)
    }
}

/// The built-in policies, nameable from CLI flags and bench configs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// [`Fifo`].
    Fifo,
    /// [`PriorityAging`] with its default aging rate.
    PriorityAging,
    /// [`ShortestJobFirst`].
    ShortestJobFirst,
    /// [`FairRoundRobin`].
    FairRoundRobin,
    /// [`SloAware`].
    SloAware,
}

impl PolicyKind {
    /// Every built-in policy, in presentation order.
    #[must_use]
    pub fn all() -> [Self; 5] {
        [
            Self::Fifo,
            Self::PriorityAging,
            Self::ShortestJobFirst,
            Self::FairRoundRobin,
            Self::SloAware,
        ]
    }

    /// The policy's stable name (matches [`SchedulerPolicy::name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Fifo => "fifo",
            Self::PriorityAging => "priority-aging",
            Self::ShortestJobFirst => "shortest-job-first",
            Self::FairRoundRobin => "fair-round-robin",
            Self::SloAware => "slo-aware",
        }
    }

    /// Instantiates the policy with its defaults.
    #[must_use]
    pub fn build(self) -> Box<dyn SchedulerPolicy> {
        match self {
            Self::Fifo => Box::new(Fifo),
            Self::PriorityAging => Box::new(PriorityAging::default()),
            Self::ShortestJobFirst => Box::new(ShortestJobFirst),
            Self::FairRoundRobin => Box::new(FairRoundRobin),
            Self::SloAware => Box::new(SloAware),
        }
    }
}

impl fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PolicyKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "fifo" => Ok(Self::Fifo),
            "priority" | "priority-aging" => Ok(Self::PriorityAging),
            "sjf" | "shortest-job-first" => Ok(Self::ShortestJobFirst),
            "fair" | "fair-round-robin" => Ok(Self::FairRoundRobin),
            "slo" | "slo-aware" => Ok(Self::SloAware),
            other => Err(format!(
                "unknown policy '{other}' (expected fifo | priority | sjf | fair | slo)"
            )),
        }
    }
}

/// How much of a preemption victim's KV cache survives the eviction.
///
/// Retention operates on the victim's *occupied* pages (the pages its
/// current context actually fills) and always keeps a **prefix**: KV
/// entries are position-dependent, so a retained suffix would be useless
/// without everything before it. Retained pages stay allocated in the
/// [`KvPager`](super::kv_pager::KvPager) while the victim waits in the
/// queue, and re-admission only re-prefills the dropped suffix.
///
/// Retained pages are a *cache*, not a reservation: if an admission
/// candidate has a batch slot but not the pages, the engine reclaims
/// queued requests' retained pages one tail page at a time (growing
/// their re-prefill debt by the reclaimed tokens) rather than stalling.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum RetentionPolicy {
    /// Drop everything; re-admission pays a full re-prefill (the PR 2
    /// behavior, and the default).
    #[default]
    None,
    /// Retain up to this many pages of the victim's KV prefix.
    Pages(usize),
    /// Retain this fraction of the victim's occupied pages, rounded down
    /// (clamped to `[0, 1]`).
    Fraction(f64),
}

impl RetentionPolicy {
    /// Pages to retain from a victim currently occupying `occupied` pages.
    #[must_use]
    pub fn retained_pages(&self, occupied: usize) -> usize {
        match *self {
            Self::None => 0,
            Self::Pages(n) => n.min(occupied),
            Self::Fraction(f) => ((occupied as f64) * f.clamp(0.0, 1.0)).floor() as usize,
        }
    }
}

impl fmt::Display for RetentionPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Self::None => f.write_str("none"),
            Self::Pages(n) => write!(f, "{n}"),
            Self::Fraction(x) => write!(f, "{x}"),
        }
    }
}

impl FromStr for RetentionPolicy {
    type Err = String;

    /// Parses `none` (full re-prefill), an integer page count, or a
    /// fraction in `(0, 1)` — the grammar of the `--retention` CLI flag.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "none" | "off" | "full" => Ok(Self::None),
            other => {
                if let Ok(pages) = other.parse::<usize>() {
                    return Ok(Self::Pages(pages));
                }
                match other.parse::<f64>() {
                    Ok(f) if f > 0.0 && f < 1.0 => Ok(Self::Fraction(f)),
                    _ => Err(format!(
                        "unknown retention '{other}' (expected none | <pages> | <fraction in (0,1)>)"
                    )),
                }
            }
        }
    }
}

/// Preemption behavior of the engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PreemptionConfig {
    /// Whether the policy may evict running requests at all. Off by
    /// default: the pre-redesign guarantee that an admitted request never
    /// leaves before finishing.
    pub enabled: bool,
    /// Extra attention passes charged on a re-admitted request's first
    /// decode step, modeling the KV-cache rebuild (re-prefill). The charge
    /// is proportional to the request's measured attention cost at its
    /// current context, scaled by the *dropped* fraction of that context
    /// under [`retention`](Self::retention), and floored at one cycle —
    /// eviction is never free.
    pub reprefill_factor: f64,
    /// Evictions allowed per engine step (bounds scheduling thrash).
    pub max_evictions_per_step: usize,
    /// How much of a victim's paged KV cache survives the eviction
    /// ([`RetentionPolicy::None`], i.e. full re-prefill, by default).
    pub retention: RetentionPolicy,
}

impl Default for PreemptionConfig {
    fn default() -> Self {
        Self {
            enabled: false,
            reprefill_factor: 1.0,
            max_evictions_per_step: 2,
            retention: RetentionPolicy::None,
        }
    }
}

impl PreemptionConfig {
    /// Preemption on, with default cost and thrash bounds and full
    /// re-prefill (no retention).
    #[must_use]
    pub fn enabled() -> Self {
        Self {
            enabled: true,
            ..Self::default()
        }
    }

    /// Replaces the retention policy.
    #[must_use]
    pub fn with_retention(mut self, retention: RetentionPolicy) -> Self {
        self.retention = retention;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_policy_counts_pages() {
        assert_eq!(RetentionPolicy::None.retained_pages(10), 0);
        assert_eq!(RetentionPolicy::Pages(4).retained_pages(10), 4);
        assert_eq!(RetentionPolicy::Pages(4).retained_pages(2), 2);
        assert_eq!(RetentionPolicy::Fraction(0.5).retained_pages(5), 2);
        assert_eq!(RetentionPolicy::Fraction(2.0).retained_pages(5), 5);
        assert_eq!(RetentionPolicy::Fraction(-1.0).retained_pages(5), 0);
    }

    #[test]
    fn retention_policy_parses_the_cli_grammar() {
        assert_eq!("none".parse::<RetentionPolicy>(), Ok(RetentionPolicy::None));
        assert_eq!("full".parse::<RetentionPolicy>(), Ok(RetentionPolicy::None));
        assert_eq!(
            "8".parse::<RetentionPolicy>(),
            Ok(RetentionPolicy::Pages(8))
        );
        assert_eq!(
            "0.5".parse::<RetentionPolicy>(),
            Ok(RetentionPolicy::Fraction(0.5))
        );
        assert!("1.5".parse::<RetentionPolicy>().is_err());
        assert!("cows".parse::<RetentionPolicy>().is_err());
    }
}
