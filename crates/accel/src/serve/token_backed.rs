//! Real-token serving: a transformer decode batch physically backed by
//! the paged KV store, mirroring the serving engine's schedule.
//!
//! The engine itself is a *cost model*: it schedules, charges cycles and
//! raises [`ServeEvent`]s, but no model runs and no KV bytes exist. This
//! module closes that gap. A [`TokenBackedBatch`] consumes the engine's
//! event stream and maintains, per request, a bundle of
//! [`PagedSeq`] rows inside one shared
//! [`PagedKvStore`] — so every scheduling decision becomes a physical
//! storage operation:
//!
//! * admission-time prefix adoption becomes a real
//!   [`fork`](PagedKvStore::fork) of the donor's pages (copy-on-write,
//!   zero rows copied for page-aligned prefixes);
//! * preemption retention becomes a real
//!   [`truncate`](PagedKvStore::truncate) down to the retained tokens;
//! * host swap-out/in becomes a real release (the retention truncate
//!   already dropped the device rows) followed by a rebuild: the next
//!   decode forwards the missing tokens again, reproducing identical
//!   rows because KV content is a pure function of the token prefix.
//!
//! Tokens are sampled greedily from a deterministic
//! [`TransformerModel`] whose per-head reads go through
//! [`PagedKvBinding`] behind the ordinary `AttentionBackend` trait, with
//! [`SimulatedAttention`] as the kernel — so the run also *measures*
//! cycles, which [`TokenBackedRun::cycle_ratio`] cross-checks against
//! the engine's charged prefill/attention cycles.
//!
//! Because KV rows depend only on the token prefix (not on when or how
//! often they were rebuilt), the mirror's tokens are byte-identical to
//! an unsharded per-request [`TransformerModel::generate`] on the same
//! prompt — the equivalence the acceptance tests pin.

use std::collections::HashMap;

use topick_model::{
    argmax_token, ModelSpec, PagedKvBinding, PagedKvStore, PagedSeq, TransformerModel,
};

use super::queue::ServingRequest;
use super::stats::ServingReport;
use super::{ServeError, ServeEvent, ServingConfig, ServingEngine};
use crate::backend::SimulatedAttention;
use crate::config::AccelConfig;

/// One request's mirror: its row sequences in the shared store plus the
/// token history needed to (re)build any frontier the engine schedules.
#[derive(Debug)]
struct SeqState {
    /// Layer-major `(layer, head)` sequences: entry `layer * n_heads +
    /// head`. Empty until the first admission materialises them.
    seqs: Vec<PagedSeq>,
    /// Rows materialised per head (every sequence's length).
    built: usize,
    /// Prompt token ids (`ServingRequest::token_at` folded into vocab).
    prompt: Vec<usize>,
    /// Tokens generated so far, in order.
    generated: Vec<usize>,
    /// Content chain keys of the full prompt pages
    /// ([`ServingRequest::page_keys`]), for donor lookup.
    page_keys: Vec<u64>,
}

/// A transformer decode batch physically backed by one shared
/// [`PagedKvStore`], driven by the serving engine's event stream (see
/// the [module docs](self)).
///
/// Feed it every event the engine emits, in order
/// ([`apply`](Self::apply) / [`apply_all`](Self::apply_all)); or use
/// [`run_token_backed`] which drives a whole run. Finished requests keep
/// their sequences mapped so they stay fork donors — which is also why
/// [`shared_pages`](Self::shared_pages) stays positive after a
/// shared-prefix run drains.
#[derive(Debug)]
pub struct TokenBackedBatch {
    model: TransformerModel,
    kernel: SimulatedAttention,
    kernel_cfg: AccelConfig,
    store: PagedKvStore,
    page_size: usize,
    states: HashMap<u64, SeqState>,
    /// Content chain key → latest request whose built rows cover it.
    registry: HashMap<u64, u64>,
    peak_shared_pages: usize,
    build_cycles: u64,
    decode_cycles: u64,
}

impl TokenBackedBatch {
    /// A batch serving `spec`-shaped requests with a model seeded by
    /// `model_seed`, mirroring an engine configured by `cfg`. The
    /// attention kernel is a [`SimulatedAttention`] over the engine's
    /// accelerator config with its datapath width set to the model's
    /// head dimension (the engine's synthetic attention measures whole
    /// `d_model`-wide queries; the real model attends per head).
    #[must_use]
    pub fn new(spec: ModelSpec, model_seed: u64, cfg: &ServingConfig) -> Self {
        let mut kernel_cfg = cfg.accel.clone();
        kernel_cfg.dim = spec.head_dim();
        let store = PagedKvStore::new(spec.head_dim(), cfg.admission.page_size);
        Self {
            model: TransformerModel::new_random(spec, model_seed),
            kernel: SimulatedAttention::new(kernel_cfg.clone()),
            kernel_cfg,
            store,
            page_size: cfg.admission.page_size.max(1),
            states: HashMap::new(),
            registry: HashMap::new(),
            peak_shared_pages: 0,
            build_cycles: 0,
            decode_cycles: 0,
        }
    }

    /// Registers a request before it is enqueued, deriving its prompt
    /// tokens and page content keys. Must be called once per request the
    /// engine will serve.
    ///
    /// # Errors
    ///
    /// [`ServeError::InvalidRequest`] if prompt plus token target cannot
    /// fit the model's maximum context.
    pub fn register(&mut self, req: &ServingRequest) -> Result<(), ServeError> {
        let spec = self.model.spec();
        if req.prompt_len + req.max_new_tokens > spec.max_context {
            return Err(ServeError::InvalidRequest(
                "prompt plus token target exceeds the model's max context",
            ));
        }
        let vocab = spec.vocab as u64;
        let prompt = (0..req.prompt_len)
            .map(|i| usize::try_from(req.token_at(i) % vocab).expect("vocab fits usize"))
            .collect();
        self.states.insert(
            req.id,
            SeqState {
                seqs: Vec::new(),
                built: 0,
                prompt,
                generated: Vec::new(),
                page_keys: req.page_keys(self.page_size),
            },
        );
        Ok(())
    }

    /// Applies one engine event to the mirror. Events must arrive in the
    /// order the engine emitted them; unknown request ids are ignored.
    pub fn apply(&mut self, event: &ServeEvent) {
        match *event {
            ServeEvent::Admitted {
                id, cached_tokens, ..
            } => self.on_admitted(id, cached_tokens),
            ServeEvent::PrefillChunk {
                id, built_tokens, ..
            } => {
                // Chunked prefill: advance the frontier to the absolute
                // built-token count the engine just charged for.
                let before = self.kernel.cycles();
                self.ensure_built(id, built_tokens);
                self.build_cycles += self.kernel.cycles() - before;
                self.publish(id);
            }
            ServeEvent::TokenGenerated {
                id,
                context,
                generated,
                ..
            } => self.on_token(id, context, generated),
            ServeEvent::Preempted {
                id,
                retained_tokens,
                ..
            } => self.on_preempted(id, retained_tokens),
            // Swap-out is already physical: the retention truncate above
            // dropped the device rows. Swap-in restores engine-side KV
            // without recompute; the mirror rebuilds those rows at the
            // next decode instead (identical contents — KV is a pure
            // function of the token prefix), so both are no-ops here.
            ServeEvent::SwappedOut { .. } | ServeEvent::SwappedIn { .. } => {}
            // Finished requests keep their sequences mapped as fork
            // donors for later admissions of the same prefix.
            ServeEvent::Enqueued { .. }
            | ServeEvent::Finished { .. }
            | ServeEvent::Rejected { .. } => {}
        }
    }

    /// [`apply`](Self::apply) for a drained event batch, in order.
    pub fn apply_all(&mut self, events: &[ServeEvent]) {
        for e in events {
            self.apply(e);
        }
    }

    /// The tokens generated for a request so far (`None` if never
    /// registered).
    #[must_use]
    pub fn generated(&self, id: u64) -> Option<&[usize]> {
        self.states.get(&id).map(|s| s.generated.as_slice())
    }

    /// The prompt token ids the mirror derived for a request.
    #[must_use]
    pub fn prompt(&self, id: u64) -> Option<&[usize]> {
        self.states.get(&id).map(|s| s.prompt.as_slice())
    }

    /// What an *unsharded* per-request run would generate: a fresh
    /// contiguous cache and a fresh kernel, via the byte-identical
    /// [`TransformerModel::generate`] wrapper. The served tokens must
    /// equal this exactly — the token-equivalence acceptance criterion.
    #[must_use]
    pub fn reference_generate(&self, req: &ServingRequest) -> Vec<usize> {
        let vocab = self.model.spec().vocab as u64;
        let prompt: Vec<usize> = (0..req.prompt_len)
            .map(|i| usize::try_from(req.token_at(i) % vocab).expect("vocab fits usize"))
            .collect();
        let mut kernel = SimulatedAttention::new(self.kernel_cfg.clone());
        self.model
            .generate(&prompt, req.max_new_tokens, 0.0, 0, &mut kernel)
    }

    /// The shared paged store backing every request's rows.
    #[must_use]
    pub fn store(&self) -> &PagedKvStore {
        &self.store
    }

    /// Pages currently mapped by more than one sequence.
    #[must_use]
    pub fn shared_pages(&self) -> usize {
        self.store.shared_pages()
    }

    /// Check the store's refcount/mapping invariants against every
    /// sequence this batch still holds (finished requests included —
    /// they stay resident as fork donors). Panics on corruption.
    pub fn validate(&self) {
        let live: Vec<&PagedSeq> = self
            .states
            .values()
            .flat_map(|state| state.seqs.iter())
            .collect();
        self.store.validate(&live);
    }

    /// The maximum [`shared_pages`](Self::shared_pages) observed across
    /// the run — proof the batch physically shared prompt KV while
    /// requests were resident, even if later copy-on-writes or releases
    /// unshared some pages.
    #[must_use]
    pub fn peak_shared_pages(&self) -> usize {
        self.peak_shared_pages
    }

    /// Kernel cycles measured while (re)building prompt/context rows —
    /// the measured counterpart of the engine's charged prefill,
    /// re-prefill and swap cycles.
    #[must_use]
    pub fn measured_build_cycles(&self) -> u64 {
        self.build_cycles
    }

    /// Kernel cycles measured in per-token decode forwards — the
    /// measured counterpart of the engine's charged attention cycles.
    #[must_use]
    pub fn measured_decode_cycles(&self) -> u64 {
        self.decode_cycles
    }

    /// Total kernel cycles measured across the run.
    #[must_use]
    pub fn measured_cycles(&self) -> u64 {
        self.build_cycles + self.decode_cycles
    }

    /// Fresh admission: materialise the request's sequences, forking the
    /// donor that published the adopted prefix's content key when the
    /// engine reported a cache hit. Re-admissions keep their retained
    /// rows (the adoption gap, if any, is rebuilt by forwarding).
    fn on_admitted(&mut self, id: u64, cached_tokens: usize) {
        let fork_key = {
            let Some(state) = self.states.get(&id) else {
                return;
            };
            if !state.seqs.is_empty() {
                return;
            }
            let pages = cached_tokens / self.page_size;
            if pages >= 1 {
                state.page_keys.get(pages - 1).copied()
            } else {
                None
            }
        };
        let donor_id = fork_key
            .and_then(|k| self.registry.get(&k).copied())
            .filter(|d| *d != id);
        let spec = self.model.spec();
        let heads_total = spec.n_layers * spec.n_heads;
        let mut seqs: Vec<PagedSeq> = Vec::new();
        if let Some(donor) = donor_id {
            if let Some(donor_state) = self.states.get(&donor) {
                // fork clamps to the donor's current length: a donor
                // truncated below the adopted prefix just means the
                // shortfall is rebuilt by forwarding.
                seqs = donor_state
                    .seqs
                    .iter()
                    .map(|s| self.store.fork(s, cached_tokens))
                    .collect();
            }
        }
        if seqs.is_empty() {
            seqs = (0..heads_total).map(|_| self.store.new_seq()).collect();
        }
        let built = seqs.first().map_or(0, PagedSeq::len);
        let state = self.states.get_mut(&id).expect("checked above");
        state.seqs = seqs;
        state.built = built;
        self.publish(id);
    }

    /// One generated token. `context` is the engine's pre-increment
    /// context — the model forwards tokens `0..context` and the argmax
    /// of the final logits is generated token number `generated`.
    fn on_token(&mut self, id: u64, context: usize, generated: usize) {
        {
            let Some(state) = self.states.get_mut(&id) else {
                return;
            };
            if state.seqs.is_empty() || context == 0 {
                return;
            }
            debug_assert_eq!(
                state.generated.len() + 1,
                generated,
                "mirror desynced from engine token count for request {id}"
            );
            // Full-retention re-admissions arrive with every row already
            // built; pop the last row so re-forwarding it recovers the
            // logits (identical rows — appends are deterministic).
            if state.built >= context {
                let pop_to = context - 1;
                for seq in &mut state.seqs {
                    self.store.truncate(seq, pop_to);
                }
                state.built = pop_to;
            }
        }
        // Catch-up rows (reprefill / swap rebuild) are build work...
        let before = self.kernel.cycles();
        self.ensure_built(id, context - 1);
        self.build_cycles += self.kernel.cycles() - before;
        // ...the final forward is the decode step itself.
        let before = self.kernel.cycles();
        let logits = self
            .ensure_built(id, context)
            .expect("decode forwards exactly one token");
        self.decode_cycles += self.kernel.cycles() - before;
        let next = argmax_token(&logits);
        let state = self.states.get_mut(&id).expect("present above");
        state.generated.push(next);
        self.publish(id);
    }

    /// Preemption retention, physically: truncate every head sequence to
    /// the retained token count, unmapping (or unsharing) dropped pages.
    fn on_preempted(&mut self, id: u64, retained_tokens: usize) {
        let Some(state) = self.states.get_mut(&id) else {
            return;
        };
        for seq in &mut state.seqs {
            self.store.truncate(seq, retained_tokens);
        }
        state.built = state.built.min(retained_tokens);
    }

    /// Forwards tokens until `target` rows exist (clamped to the known
    /// token history), returning the logits of the last forward if any
    /// happened.
    fn ensure_built(&mut self, id: u64, target: usize) -> Option<Vec<f32>> {
        let mut state = self.states.remove(&id)?;
        let mut logits = None;
        if !state.seqs.is_empty() {
            let have = state.prompt.len() + state.generated.len();
            let target = target.min(have);
            if state.built < target {
                let mut binding = PagedKvBinding::new(
                    &mut self.store,
                    &mut state.seqs,
                    self.model.spec().n_heads,
                );
                for pos in state.built..target {
                    let tok = if pos < state.prompt.len() {
                        state.prompt[pos]
                    } else {
                        state.generated[pos - state.prompt.len()]
                    };
                    logits = Some(self.model.decode_step(tok, &mut binding, &mut self.kernel));
                }
                state.built = target;
            }
        }
        self.states.insert(id, state);
        logits
    }

    /// Publishes the content keys the request's built rows now cover (so
    /// later admissions can fork them) and tracks peak sharing.
    fn publish(&mut self, id: u64) {
        if let Some(state) = self.states.get(&id) {
            let covered = (state.built / self.page_size).min(state.page_keys.len());
            for j in 0..covered {
                self.registry.insert(state.page_keys[j], id);
            }
        }
        self.peak_shared_pages = self.peak_shared_pages.max(self.store.shared_pages());
    }
}

/// Outcome of [`run_token_backed`]: the engine's cost-model report side
/// by side with the token-backed mirror that actually generated tokens.
#[derive(Debug)]
pub struct TokenBackedRun {
    /// The engine's aggregate report for the run (charged cycles,
    /// schedules, hit rates).
    pub report: ServingReport,
    /// The mirror, holding per-request tokens, the shared store and the
    /// measured kernel cycles.
    pub batch: TokenBackedBatch,
}

impl TokenBackedRun {
    /// The engine's charged prefill + re-prefill + attention cycles —
    /// the cost-model side of the cross-check.
    #[must_use]
    pub fn charged_cycles(&self) -> u64 {
        self.report.total_attention_cycles()
            + self.report.total_prefill_cycles()
            + self.report.total_reprefill_cycles()
    }

    /// Charged over measured cycles. The engine charges one synthetic
    /// `d_model`-wide attention per request-step scaled by `heads`,
    /// while the model measures `n_layers × n_heads` per-head attends —
    /// so the ratio is not 1, but on a fixed workload and config it is a
    /// deterministic constant, which the acceptance tests pin within a
    /// tolerance. A schedule/measurement drift between the two layers
    /// moves this ratio and trips the pin.
    #[must_use]
    pub fn cycle_ratio(&self) -> f64 {
        let measured = self.batch.measured_cycles();
        if measured == 0 {
            return 0.0;
        }
        self.charged_cycles() as f64 / measured as f64
    }
}

/// Serves `requests` on `engine` while a [`TokenBackedBatch`] mirrors
/// every scheduling decision into real paged-KV-backed token generation.
/// The engine must have event recording enabled (the builder's default).
///
/// # Errors
///
/// Propagates engine errors; [`ServeError::StepLimitExceeded`] if the
/// workload does not drain within `max_steps`;
/// [`ServeError::InvalidRequest`] if a request cannot fit the model's
/// context window.
///
/// # Panics
///
/// Panics if `engine` was built with `record_events(false)` — without
/// events there is nothing to mirror.
pub fn run_token_backed(
    engine: &mut ServingEngine,
    requests: Vec<ServingRequest>,
    spec: ModelSpec,
    model_seed: u64,
    max_steps: usize,
) -> Result<TokenBackedRun, ServeError> {
    assert!(
        engine.records_events(),
        "run_token_backed requires an engine with event recording enabled"
    );
    let mut batch = TokenBackedBatch::new(spec, model_seed, engine.config());
    for req in requests {
        batch.register(&req)?;
        engine.enqueue(req)?;
    }
    batch.apply_all(&engine.drain_events());
    let mut steps = 0usize;
    loop {
        let step = engine.step()?;
        let events = engine.drain_events();
        batch.apply_all(&events);
        if step.is_none() {
            break;
        }
        steps += 1;
        if steps > max_steps {
            return Err(ServeError::StepLimitExceeded {
                max_steps,
                unfinished: engine.pending() + engine.running(),
            });
        }
    }
    Ok(TokenBackedRun {
        report: engine.report(),
        batch,
    })
}
