//! Production-shaped workload scenarios: deterministic, seed-derived
//! open-loop request streams behind one [`Scenario`] abstraction, so
//! benches, tests and the CLI draw from a shared library instead of
//! hand-rolled generators.
//!
//! A scenario owns two things: the *request stream* ([`Scenario::generate`]
//! — a `Vec<ServingRequest>` whose `arrival_step`s model open-loop traffic)
//! and the *canonical engine sizing* that stream is shaped for
//! ([`Scenario::serving_config`]), the same pairing
//! [`workloads`](super::workloads) established for the original two
//! generators. [`ScenarioKind`] is the registry: every scenario is
//! nameable from CLI flags, bench configs and recorded traces, following
//! the [`PolicyKind`](super::PolicyKind) /
//! [`RoutingKind`](super::RoutingKind) idiom.
//!
//! Everything is deterministic in the seed (SplitMix64 streams, no global
//! RNG), which is what lets a recorded [`Trace`](super::trace::Trace)
//! name its scenario and replay to an identical schedule.

use std::fmt;
use std::str::FromStr;

use super::queue::{splitmix64, ServingRequest};
use super::ServingConfig;
use crate::config::AccelConfig;

/// Draws the next value of a SplitMix64 stream: mixes the advanced state
/// through the shared [`splitmix64`] and steps the counter.
pub(crate) fn next_rand(state: &mut u64) -> u64 {
    let out = splitmix64(*state);
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    out
}

/// A deterministic serving workload: a seed-derived open-loop request
/// stream plus the canonical engine configuration it is shaped for.
///
/// Implementations must be pure functions of `(self, seed)`: the same
/// scenario parameters and seed always produce the byte-identical request
/// list. That determinism is what the trace record/replay fixed point
/// (`record → replay → record` yields the same digest) is built on.
pub trait Scenario: fmt::Debug + Send {
    /// Stable, human-readable scenario name (used by the CLI registry,
    /// bench records and recorded traces).
    fn name(&self) -> &'static str;

    /// One-line description for `--list-scenarios` style help output.
    fn description(&self) -> &'static str;

    /// The request stream: deterministic in `seed`, with `arrival_step`s
    /// modeling open-loop traffic (requests become schedulable over time,
    /// whether or not the engine has kept up).
    fn generate(&self, seed: u64) -> Vec<ServingRequest>;

    /// The canonical engine sizing this stream is shaped for (batch
    /// slots, KV budget, prefix caching, prefill pricing). Callers may
    /// still adjust scheduling knobs (policy, preemption, sharding) on
    /// top.
    fn serving_config(&self, accel: AccelConfig) -> ServingConfig;
}

/// The canonical chat-shaped sizing shared by the prefix-heavy scenarios:
/// the [`workloads::shared_prefix_chat`](super::workloads::shared_prefix_chat)
/// engine with the prefix cache on and prompt prefill priced, so cache
/// hits are visible in cycles.
fn chat_shaped_config(accel: AccelConfig) -> ServingConfig {
    let mut cfg = ServingConfig::new(accel);
    cfg.heads = 4;
    cfg.weight_bytes = 10_000_000;
    cfg.admission.max_batch = 6;
    cfg.admission.max_batch_tokens = 1600;
    cfg.admission.page_size = 16;
    cfg.admission.prefix_cache = true;
    cfg.seed = 7;
    cfg.prefill_factor = 1.0;
    cfg
}

/// The skewed "elephant/mice" scenario: `elephants` long, low-priority
/// requests from one client arrive first and fill the batch, then `mice`
/// short, high-priority requests from three other clients trickle in
/// behind them — the canonical policy/preemption stress shape.
///
/// The stream is deliberately **seed-independent** (the arrival pattern
/// *is* the scenario); the schedule-digest goldens in `tests/serving.rs`
/// pin it byte for byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SkewedElephantMice {
    /// Long, early, low-priority requests (canonically 4).
    pub elephants: u64,
    /// Short, late, high-priority requests (canonically 12).
    pub mice: u64,
}

impl Default for SkewedElephantMice {
    fn default() -> Self {
        Self {
            elephants: 4,
            mice: 12,
        }
    }
}

impl Scenario for SkewedElephantMice {
    fn name(&self) -> &'static str {
        "skewed-elephant-mice"
    }

    fn description(&self) -> &'static str {
        "long elephants saturate the batch ahead of short high-priority mice (seed-independent)"
    }

    fn generate(&self, _seed: u64) -> Vec<ServingRequest> {
        let mut reqs: Vec<ServingRequest> = (0..self.elephants)
            .map(|id| ServingRequest::new(id, 480, 16 + id as usize * 6).with_client(0))
            .collect();
        reqs.extend((0..self.mice).map(|i| {
            ServingRequest::new(100 + i, 48 + (i as usize % 3) * 16, 2 + (i as usize % 5))
                .with_priority(3 + (i % 3) as u8 * 3)
                .with_client(1 + i % 3)
                .arriving_at(2 + i % 4)
        }));
        reqs
    }

    fn serving_config(&self, accel: AccelConfig) -> ServingConfig {
        // The canonical skewed engine: four elephants provision 2020
        // final-context tokens against a 2200-token budget, saturating
        // both slots and pages — and prompts are unshared, so the prefix
        // cache stays off and prefill unpriced (the pre-caching goldens).
        let mut cfg = ServingConfig::new(accel);
        cfg.heads = 4;
        cfg.weight_bytes = 10_000_000;
        cfg.admission.max_batch = 4;
        cfg.admission.max_batch_tokens = 2200;
        cfg.admission.page_size = 16;
        cfg.seed = 7;
        cfg
    }
}

/// The shared-prefix "chat" scenario: `tenants` tenants, each with its own
/// page-aligned system prompt (96–160 tokens), each sending `per_tenant`
/// requests that append a short unique user turn. See
/// [`workloads::shared_prefix_chat`](super::workloads::shared_prefix_chat)
/// — this struct is that generator refactored onto the [`Scenario`] API,
/// byte-for-byte (the per-tenant byte-identity tests pin it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SharedPrefixChat {
    /// Independent tenants, each with its own system prompt (canonically 4).
    pub tenants: u64,
    /// Requests per tenant (canonically 6).
    pub per_tenant: u64,
}

impl Default for SharedPrefixChat {
    fn default() -> Self {
        Self {
            tenants: 4,
            per_tenant: 6,
        }
    }
}

impl Scenario for SharedPrefixChat {
    fn name(&self) -> &'static str {
        "shared-prefix-chat"
    }

    fn description(&self) -> &'static str {
        "tenants share page-aligned system prompts; short unique user turns ride behind them"
    }

    fn generate(&self, seed: u64) -> Vec<ServingRequest> {
        let mut reqs = Vec::with_capacity((self.tenants * self.per_tenant) as usize);
        for tenant in 0..self.tenants {
            let mut state = splitmix64(
                seed ^ 0xA076_1D64_78BD_642F ^ tenant.wrapping_mul(0x9E37_79B9_7F4A_7C15),
            );
            let tag = next_rand(&mut state);
            // 6..=10 pages of 16 tokens: 96, 112, 128, 144 or 160.
            let prefix_len = 96 + 16 * (next_rand(&mut state) % 5) as usize;
            for i in 0..self.per_tenant {
                let mix = next_rand(&mut state);
                let suffix = 8 + (mix % 56) as usize;
                reqs.push(
                    ServingRequest::new(
                        tenant * 1000 + i,
                        prefix_len + suffix,
                        2 + (mix % 7) as usize,
                    )
                    .with_priority((mix >> 8) as u8 % 4)
                    .with_client(tenant)
                    .with_shared_prefix(tag, prefix_len)
                    .arriving_at(i / 2 + (mix >> 16) % 3),
                );
            }
        }
        reqs
    }

    fn serving_config(&self, accel: AccelConfig) -> ServingConfig {
        chat_shaped_config(accel)
    }
}

/// Arrivals per diurnal phase: a stylized day curve — a quiet trough, a
/// morning ramp, a midday peak, an evening tail — repeated per day.
const DIURNAL_ENVELOPE: [u64; 8] = [1, 0, 1, 2, 4, 3, 3, 2];

/// Engine steps each diurnal phase spans.
const DIURNAL_PHASE_STEPS: u64 = 4;

/// Diurnal open-loop arrivals: request intensity follows a day-shaped
/// envelope (trough → ramp → peak → tail), so the engine sees genuine
/// load swings — idle ticks at night, admission pressure at the peak —
/// instead of a flat arrival rate. Each request belongs to one of
/// `clients` "apps", every app with its own shared system prompt, and
/// carries interactive TTFT/inter-token deadlines that only get contended
/// during the peak phases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiurnalArrivals {
    /// Distinct apps, each with its own shared system prompt (canonically 3).
    pub clients: u64,
    /// Day cycles to run the envelope for (canonically 1: 16 requests).
    pub days: u64,
}

impl Default for DiurnalArrivals {
    fn default() -> Self {
        Self {
            clients: 3,
            days: 1,
        }
    }
}

impl Scenario for DiurnalArrivals {
    fn name(&self) -> &'static str {
        "diurnal"
    }

    fn description(&self) -> &'static str {
        "open-loop arrivals follow a day-shaped intensity envelope (trough, ramp, peak, tail)"
    }

    fn generate(&self, seed: u64) -> Vec<ServingRequest> {
        let clients = self.clients.max(1);
        // Per-app system prompts, page-aligned (4..=7 pages of 16).
        let profiles: Vec<(u64, usize)> = (0..clients)
            .map(|c| {
                let mut s = splitmix64(
                    seed ^ 0x8CB9_2BA7_2F3D_8DD7 ^ c.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let tag = next_rand(&mut s);
                let prefix_len = 64 + 16 * (next_rand(&mut s) % 4) as usize;
                (tag, prefix_len)
            })
            .collect();
        let mut state = splitmix64(seed ^ 0x2545_F491_4F6C_DD1D);
        let mut reqs = Vec::new();
        let mut id = 0u64;
        for day in 0..self.days.max(1) {
            for (phase, &arrivals) in DIURNAL_ENVELOPE.iter().enumerate() {
                let base =
                    (day * DIURNAL_ENVELOPE.len() as u64 + phase as u64) * DIURNAL_PHASE_STEPS;
                for _ in 0..arrivals {
                    let mix = next_rand(&mut state);
                    let client = mix % clients;
                    let (tag, prefix_len) = profiles[client as usize];
                    let suffix = 8 + ((mix >> 8) % 40) as usize;
                    reqs.push(
                        ServingRequest::new(
                            id,
                            prefix_len + suffix,
                            2 + ((mix >> 16) % 5) as usize,
                        )
                        .with_priority((mix >> 24) as u8 % 4)
                        .with_client(client)
                        .with_shared_prefix(tag, prefix_len)
                        .arriving_at(base + (mix >> 32) % DIURNAL_PHASE_STEPS)
                        // Day-curve traffic carries interactive SLOs; the
                        // peak phases are where they get contended.
                        .with_ttft_deadline(8 + (mix >> 40) % 8)
                        .with_itl_deadline(3 + (mix >> 48) % 4),
                    );
                    id += 1;
                }
            }
        }
        reqs
    }

    fn serving_config(&self, accel: AccelConfig) -> ServingConfig {
        chat_shaped_config(accel)
    }
}

/// Correlated multi-tenant bursts: every burst wave is fired by one shared
/// external trigger (a news event, a cron fan-out), so all tenants' bursts
/// *collide* within a couple of steps instead of interleaving politely —
/// the admission-pressure regime where scheduling policy and preemption
/// decide who waits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MultiTenantBursts {
    /// Independent tenants, each with its own shared prefix (canonically 3).
    pub tenants: u64,
    /// Burst waves (canonically 2).
    pub bursts: u64,
    /// Requests per tenant per wave (canonically 3).
    pub burst_size: u64,
}

impl Default for MultiTenantBursts {
    fn default() -> Self {
        Self {
            tenants: 3,
            bursts: 2,
            burst_size: 3,
        }
    }
}

impl Scenario for MultiTenantBursts {
    fn name(&self) -> &'static str {
        "multi-tenant-bursts"
    }

    fn description(&self) -> &'static str {
        "one shared trigger per wave makes every tenant's burst collide in the same few steps"
    }

    fn generate(&self, seed: u64) -> Vec<ServingRequest> {
        let tenants = self.tenants.max(1);
        let burst_size = self.burst_size.max(1);
        // Per-tenant shared prefixes, burst-independent (5..=8 pages).
        let profiles: Vec<(u64, usize)> = (0..tenants)
            .map(|t| {
                let mut s = splitmix64(
                    seed ^ 0xE703_7ED1_A0B4_28DB ^ t.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                );
                let tag = next_rand(&mut s);
                let prefix_len = 80 + 16 * (next_rand(&mut s) % 4) as usize;
                (tag, prefix_len)
            })
            .collect();
        let mut state = splitmix64(seed ^ 0x94D0_49BB_1331_11EB);
        let mut reqs = Vec::new();
        for b in 0..self.bursts.max(1) {
            // The correlation: one trigger step per wave, shared by every
            // tenant, with at most ±2 steps of per-request jitter.
            let trigger = b * 10 + next_rand(&mut state) % 3;
            for tenant in 0..tenants {
                let (tag, prefix_len) = profiles[tenant as usize];
                for k in 0..burst_size {
                    let mix = next_rand(&mut state);
                    let suffix = 8 + (mix % 24) as usize;
                    reqs.push(
                        ServingRequest::new(
                            tenant * 1000 + b * burst_size + k,
                            prefix_len + suffix,
                            2 + ((mix >> 8) % 4) as usize,
                        )
                        .with_priority(tenant as u8 % 4)
                        .with_client(tenant)
                        .with_shared_prefix(tag, prefix_len)
                        .arriving_at(trigger + (mix >> 16) % 2),
                    );
                }
            }
        }
        reqs
    }

    fn serving_config(&self, accel: AccelConfig) -> ServingConfig {
        chat_shaped_config(accel)
    }
}

/// Agentic tool-call loops: each session is an agent that returns after
/// every tool call with its *whole history* as a grown, page-aligned
/// shared prefix — turn `t`'s prefix extends turn `t-1`'s, so consecutive
/// turns share all earlier prefix pages. This stresses the prefix cache
/// and [`PrefixAffinity`](super::PrefixAffinity) routing in a way one-shot
/// chat never does: the payoff only materializes if every turn of a
/// session lands on the shard still holding the session's pages (all
/// turns share `page_keys[0]`, the affinity routing key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgenticToolLoops {
    /// Concurrent agent sessions (canonically 4).
    pub sessions: u64,
    /// Tool-call turns per session (canonically 4).
    pub turns: u64,
}

impl Default for AgenticToolLoops {
    fn default() -> Self {
        Self {
            sessions: 4,
            turns: 4,
        }
    }
}

impl Scenario for AgenticToolLoops {
    fn name(&self) -> &'static str {
        "agentic-tool-loops"
    }

    fn description(&self) -> &'static str {
        "agent sessions return after each tool call with a grown shared prefix (affinity bait)"
    }

    fn generate(&self, seed: u64) -> Vec<ServingRequest> {
        let mut reqs = Vec::new();
        for s in 0..self.sessions.max(1) {
            let mut state =
                splitmix64(seed ^ 0xBF58_476D_1CE4_E5B9 ^ s.wrapping_mul(0x9E37_79B9_7F4A_7C15));
            let tag = next_rand(&mut state);
            for t in 0..self.turns.max(1) {
                let mix = next_rand(&mut state);
                // The session's history so far, page-aligned: 64 tokens of
                // system prompt plus 32 per completed turn, all drawn from
                // the session's tag pool so turn t+1's prefix pages extend
                // turn t's.
                let prefix_len = 64 + 32 * t as usize;
                let suffix = 8 + (mix % 24) as usize;
                reqs.push(
                    ServingRequest::new(
                        s * 100 + t,
                        prefix_len + suffix,
                        2 + ((mix >> 8) % 3) as usize,
                    )
                    .with_priority((mix >> 24) as u8 % 3)
                    .with_client(s)
                    .with_shared_prefix(tag, prefix_len)
                    .arriving_at(t * 6 + (mix >> 16) % 3),
                );
            }
        }
        reqs
    }

    fn serving_config(&self, accel: AccelConfig) -> ServingConfig {
        chat_shaped_config(accel)
    }
}

/// Long-document summarization: prompts of 384–816 tokens with tiny token
/// targets and no shared prefixes — the prefill-dominated regime where
/// throughput is bounded by prompt processing, not decode, and the prefix
/// cache has nothing to adopt. Every request carries interactive TTFT and
/// inter-token deadlines, making this the canonical workload for chunked
/// prefill and the SLO-aware scheduler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LongDocSummarize {
    /// Documents to summarize (canonically 8).
    pub docs: u64,
}

impl Default for LongDocSummarize {
    fn default() -> Self {
        Self { docs: 8 }
    }
}

impl Scenario for LongDocSummarize {
    fn name(&self) -> &'static str {
        "long-doc-summarize"
    }

    fn description(&self) -> &'static str {
        "384-816 token documents with tiny targets: prefill-dominated, nothing to share"
    }

    fn generate(&self, seed: u64) -> Vec<ServingRequest> {
        let mut state = splitmix64(seed ^ 0x5851_F42D_4C95_7F2D);
        (0..self.docs.max(1))
            .map(|d| {
                let mix = next_rand(&mut state);
                let prompt = 384 + 48 * (mix % 10) as usize;
                ServingRequest::new(d, prompt, 2 + ((mix >> 8) % 4) as usize)
                    .with_priority((mix >> 16) as u8 % 2)
                    .with_client(d % 2)
                    .arriving_at(d * 3 + (mix >> 24) % 3)
                    // Interactive summarization SLOs: first tokens are due
                    // within a handful of steps despite the 384-816 token
                    // prefill bill — the regime chunked prefill and
                    // SLO-aware scheduling exist for.
                    .with_ttft_deadline(6 + (mix >> 32) % 6)
                    .with_itl_deadline(2 + (mix >> 40) % 3)
            })
            .collect()
    }

    fn serving_config(&self, accel: AccelConfig) -> ServingConfig {
        // Few slots, a deep KV budget (an 816-token document alone needs
        // 52 pages), prefill priced at full weight: the bill this scenario
        // exists to measure.
        let mut cfg = ServingConfig::new(accel);
        cfg.heads = 4;
        cfg.weight_bytes = 10_000_000;
        cfg.admission.max_batch = 3;
        cfg.admission.max_batch_tokens = 2048;
        cfg.admission.page_size = 16;
        cfg.admission.prefix_cache = true;
        cfg.seed = 7;
        cfg.prefill_factor = 1.0;
        cfg
    }
}

/// The built-in scenarios, nameable from CLI flags, bench configs and
/// recorded traces.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScenarioKind {
    /// [`SkewedElephantMice`].
    SkewedElephantMice,
    /// [`SharedPrefixChat`].
    SharedPrefixChat,
    /// [`DiurnalArrivals`].
    DiurnalArrivals,
    /// [`MultiTenantBursts`].
    MultiTenantBursts,
    /// [`AgenticToolLoops`].
    AgenticToolLoops,
    /// [`LongDocSummarize`].
    LongDocSummarize,
}

impl ScenarioKind {
    /// Every built-in scenario, in presentation order.
    #[must_use]
    pub fn all() -> [Self; 6] {
        [
            Self::SkewedElephantMice,
            Self::SharedPrefixChat,
            Self::DiurnalArrivals,
            Self::MultiTenantBursts,
            Self::AgenticToolLoops,
            Self::LongDocSummarize,
        ]
    }

    /// The scenario's stable name (matches [`Scenario::name`]).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::SkewedElephantMice => "skewed-elephant-mice",
            Self::SharedPrefixChat => "shared-prefix-chat",
            Self::DiurnalArrivals => "diurnal",
            Self::MultiTenantBursts => "multi-tenant-bursts",
            Self::AgenticToolLoops => "agentic-tool-loops",
            Self::LongDocSummarize => "long-doc-summarize",
        }
    }

    /// Instantiates the scenario with its canonical parameters.
    #[must_use]
    pub fn build(self) -> Box<dyn Scenario> {
        match self {
            Self::SkewedElephantMice => Box::new(SkewedElephantMice::default()),
            Self::SharedPrefixChat => Box::new(SharedPrefixChat::default()),
            Self::DiurnalArrivals => Box::new(DiurnalArrivals::default()),
            Self::MultiTenantBursts => Box::new(MultiTenantBursts::default()),
            Self::AgenticToolLoops => Box::new(AgenticToolLoops::default()),
            Self::LongDocSummarize => Box::new(LongDocSummarize::default()),
        }
    }
}

impl fmt::Display for ScenarioKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for ScenarioKind {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "skewed" | "skewed-elephant-mice" => Ok(Self::SkewedElephantMice),
            "chat" | "shared-prefix-chat" => Ok(Self::SharedPrefixChat),
            "diurnal" => Ok(Self::DiurnalArrivals),
            "bursts" | "multi-tenant-bursts" => Ok(Self::MultiTenantBursts),
            "agentic" | "agentic-tool-loops" => Ok(Self::AgenticToolLoops),
            "long-doc" | "summarize" | "long-doc-summarize" => Ok(Self::LongDocSummarize),
            other => Err(format!(
                "unknown scenario '{other}' (expected skewed | chat | diurnal | bursts | agentic | long-doc)"
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelMode;
    use crate::serve::ServingEngine;

    #[test]
    fn scenario_kind_round_trips_through_names() {
        for kind in ScenarioKind::all() {
            assert_eq!(kind.name().parse::<ScenarioKind>().unwrap(), kind);
            assert_eq!(kind.build().name(), kind.name());
            assert!(!kind.build().description().is_empty());
        }
        assert!("nope".parse::<ScenarioKind>().is_err());
        assert_eq!(
            "agentic".parse::<ScenarioKind>(),
            Ok(ScenarioKind::AgenticToolLoops)
        );
    }

    #[test]
    fn every_scenario_is_deterministic_in_its_seed() {
        for kind in ScenarioKind::all() {
            let s = kind.build();
            let a = s.generate(41);
            let b = s.generate(41);
            assert_eq!(a, b, "{kind}: same seed must reproduce the workload");
            assert_eq!(format!("{a:?}"), format!("{b:?}"), "{kind}");
            assert!(!a.is_empty(), "{kind}: scenarios must produce work");
        }
        // The skewed stream is seed-independent by design; every other
        // scenario must actually vary with the seed.
        for kind in ScenarioKind::all() {
            let s = kind.build();
            let differs = s.generate(1) != s.generate(2);
            assert_eq!(
                differs,
                kind != ScenarioKind::SkewedElephantMice,
                "{kind}: unexpected seed sensitivity"
            );
        }
    }

    #[test]
    fn every_scenario_has_unique_ids_and_valid_shapes() {
        for kind in ScenarioKind::all() {
            let reqs = kind.build().generate(11);
            let ids: std::collections::BTreeSet<u64> = reqs.iter().map(|r| r.id).collect();
            assert_eq!(ids.len(), reqs.len(), "{kind}: duplicate request ids");
            assert!(reqs
                .iter()
                .all(|r| r.prompt_len > 0 && r.max_new_tokens > 0));
        }
    }

    #[test]
    fn every_request_fits_its_scenarios_canonical_engine() {
        let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap();
        for kind in ScenarioKind::all() {
            let s = kind.build();
            let cfg = s.serving_config(accel.clone());
            let engine = ServingEngine::new(cfg);
            for req in s.generate(11) {
                engine
                    .validate_request(&req)
                    .unwrap_or_else(|e| panic!("{kind}: request {} rejected: {e}", req.id));
            }
        }
    }

    #[test]
    fn agentic_turns_share_a_growing_prefix_within_each_session() {
        let reqs = AgenticToolLoops::default().generate(11);
        for session in 0..4u64 {
            let turns: Vec<_> = reqs.iter().filter(|r| r.client_id == session).collect();
            assert_eq!(turns.len(), 4);
            // One tag per session; the prefix grows by exactly one
            // conversation turn (32 tokens = 2 pages) each time.
            assert!(turns.iter().all(|r| r.prefix_tag == turns[0].prefix_tag));
            for (t, r) in turns.iter().enumerate() {
                assert_eq!(r.prefix_len, 64 + 32 * t);
                assert_eq!(r.prefix_len % 16, 0);
                assert!(r.prompt_len > r.prefix_len);
            }
            // Turn t+1's leading page hashes extend turn t's: every page
            // inside turn t's prefix is identical, so the prefix cache can
            // adopt the whole history — and all turns agree on keys[0],
            // the affinity routing key.
            let keys: Vec<Vec<u64>> = turns.iter().map(|r| r.page_keys(16)).collect();
            for t in 0..turns.len() - 1 {
                let shared_pages = turns[t].prefix_len / 16;
                assert_eq!(keys[t + 1][..shared_pages], keys[t][..shared_pages]);
            }
            assert!(keys.iter().all(|k| k[0] == keys[0][0]));
        }
        // Sessions do not share content with each other.
        let (a, b) = (
            reqs.iter().find(|r| r.client_id == 0).unwrap(),
            reqs.iter().find(|r| r.client_id == 1).unwrap(),
        );
        assert_ne!(a.page_keys(16)[0], b.page_keys(16)[0]);
    }

    #[test]
    fn diurnal_arrivals_follow_the_envelope() {
        let scenario = DiurnalArrivals::default();
        let reqs = scenario.generate(3);
        assert_eq!(reqs.len(), DIURNAL_ENVELOPE.iter().sum::<u64>() as usize);
        // Arrivals stay inside the day span and are non-decreasing per
        // phase block: the peak phases hold more arrivals than the trough.
        let day_steps = DIURNAL_ENVELOPE.len() as u64 * DIURNAL_PHASE_STEPS;
        assert!(reqs.iter().all(|r| r.arrival_step < day_steps));
        let peak_window = 4 * DIURNAL_PHASE_STEPS..6 * DIURNAL_PHASE_STEPS;
        let trough_window = 0..2 * DIURNAL_PHASE_STEPS;
        let peak = reqs
            .iter()
            .filter(|r| peak_window.contains(&r.arrival_step))
            .count();
        let trough = reqs
            .iter()
            .filter(|r| trough_window.contains(&r.arrival_step))
            .count();
        assert!(
            peak > trough,
            "peak window held {peak} arrivals vs {trough} in the trough"
        );
    }

    #[test]
    fn bursts_collide_across_tenants() {
        let reqs = MultiTenantBursts::default().generate(11);
        assert_eq!(reqs.len(), 18);
        // Every wave lands all tenants' requests within a 4-step window of
        // one shared trigger.
        for wave in 0..2u64 {
            let wave_reqs: Vec<_> = reqs.iter().filter(|r| (r.id % 1000) / 3 == wave).collect();
            assert_eq!(wave_reqs.len(), 9);
            let lo = wave_reqs.iter().map(|r| r.arrival_step).min().unwrap();
            let hi = wave_reqs.iter().map(|r| r.arrival_step).max().unwrap();
            assert!(hi - lo <= 3, "wave {wave} spread {lo}..{hi}");
            let tenants: std::collections::BTreeSet<u64> =
                wave_reqs.iter().map(|r| r.client_id).collect();
            assert_eq!(tenants.len(), 3, "every tenant bursts in every wave");
        }
    }

    #[test]
    fn long_doc_is_prefill_dominated_and_unshared() {
        let reqs = LongDocSummarize::default().generate(11);
        assert!(reqs.iter().all(|r| r.prompt_len >= 384));
        assert!(reqs.iter().all(|r| r.max_new_tokens <= 5));
        assert!(reqs.iter().all(|r| r.prefix_len == 0));
    }
}
