//! Per-request, per-step and aggregate observability of a served workload.

use topick_core::PruneStats;

/// Lifecycle record of one request, filled in as the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// The request's id.
    pub id: u64,
    /// Context length at arrival.
    pub prompt_len: usize,
    /// Tokens generated so far (equals the target once finished).
    pub generated: usize,
    /// Scheduling priority the request carried.
    pub priority: u8,
    /// Originating client.
    pub client_id: u64,
    /// Engine step at which the request became schedulable (its arrival
    /// step, or the enqueue step if it arrived immediately).
    pub enqueued_at: usize,
    /// Engine step at which it first joined the running batch.
    pub admitted_at: Option<usize>,
    /// Engine step in which its first token was generated.
    pub first_token_at: Option<usize>,
    /// Engine step after which it completed.
    pub finished_at: Option<usize>,
    /// How many times the scheduler evicted it back to the queue.
    pub preemptions: u32,
    /// Attention cycles attributed to this request (per-head cost × heads).
    pub attention_cycles: u64,
    /// Prompt-prefill cycles charged on this request's first decode step
    /// (0 unless the engine prices prefill via
    /// [`prefill_factor`](super::ServingConfig::prefill_factor); shrinks
    /// with every prompt token the prefix cache served).
    pub prefill_cycles: u64,
    /// KV re-prefill cycles charged to this request across re-admissions.
    pub reprefill_cycles: u64,
    /// Prompt tokens served out of the shared-prefix cache at this
    /// request's admissions — KV this request never had to (re-)prefill
    /// because the pages were adopted copy-on-write from another request
    /// or from the retained cache.
    pub prefix_hit_tokens: usize,
    /// KV tokens whose pages survived this request's preemptions and were
    /// carried into re-admission (0 without paged retention, or if the
    /// retained pages were reclaimed under admission pressure).
    pub retained_tokens: usize,
    /// KV tokens actually re-prefilled after preemptions (equals the full
    /// evicted contexts under full re-prefill; only the dropped suffixes
    /// under paged retention).
    pub reprefilled_tokens: usize,
    /// KV tokens this request copied back from the modeled host tier
    /// across re-admissions — evicted KV whose contents survived a
    /// swap-out and so were re-priced at
    /// [`swap_cost_factor`](super::ServingConfig::swap_cost_factor)
    /// instead of being re-prefilled (0 without a host tier).
    pub swapped_tokens: usize,
    /// Host-tier copy-back cycles charged to this request across
    /// re-admissions (0 without a host tier).
    pub swap_cycles: u64,
    /// KV tokens that followed this request across shards — prefix pages
    /// pulled from a sibling shard or the built context of a migrated
    /// running request, re-priced at
    /// [`ship_cost_factor`](super::ServingConfig::ship_cost_factor)
    /// instead of being re-prefilled (0 without shipping).
    pub shipped_tokens: usize,
    /// Cross-shard transfer cycles charged to this request (0 without
    /// shipping).
    pub ship_cycles: u64,
    /// The TTFT deadline the request carried, if any (steps from
    /// [`enqueued_at`](Self::enqueued_at), first-token step inclusive).
    pub ttft_deadline: Option<u64>,
    /// The inter-token deadline the request carried, if any (maximum steps
    /// between consecutive generated tokens).
    pub itl_deadline: Option<u64>,
    /// Tokens generated before any deadline was blown — the request's
    /// contribution to goodput-under-SLO. A missed TTFT leaves this at 0
    /// (even the first token was already late); a missed inter-token
    /// deadline stops the count at the tokens delivered on time.
    pub good_tokens: usize,
    /// Whether the request has blown any of its deadlines. Never set for
    /// deadline-free requests.
    pub slo_violated: bool,
}

impl RequestStats {
    /// Whether the request carried any SLO deadline — the denominator of
    /// deadline-attainment accounting.
    #[must_use]
    pub fn has_deadline(&self) -> bool {
        self.ttft_deadline.is_some() || self.itl_deadline.is_some()
    }

    /// Whether the request met every deadline it carried (trivially true
    /// for deadline-free requests).
    #[must_use]
    pub fn slo_attained(&self) -> bool {
        !self.slo_violated
    }

    /// The session-level summary of this request, once it has produced at
    /// least one token (`None` before that).
    #[must_use]
    pub fn session(&self) -> Option<SessionStats> {
        let admitted = self.admitted_at?;
        let first = self.first_token_at?;
        Some(SessionStats {
            queue_wait_steps: admitted.saturating_sub(self.enqueued_at),
            time_to_first_token_steps: first - self.enqueued_at + 1,
            decode_steps: self.generated,
            preemptions: self.preemptions,
            retained_tokens: self.retained_tokens,
            reprefilled_tokens: self.reprefilled_tokens,
            prefix_hit_tokens: self.prefix_hit_tokens,
            good_tokens: self.good_tokens,
            slo_attained: self.slo_attained(),
        })
    }
}

/// Per-request serving quality: how long the request queued, how fast its
/// first token came back, and how much scheduling churn it suffered. All
/// times are in engine steps (one batched decode iteration each).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SessionStats {
    /// Steps spent in the arrival queue before first admission.
    pub queue_wait_steps: usize,
    /// Steps from becoming schedulable until the first token existed
    /// (inclusive of the generating step, so the minimum is 1).
    pub time_to_first_token_steps: usize,
    /// Decode steps the request participated in (= tokens generated).
    pub decode_steps: usize,
    /// Times the request was preempted back to the queue.
    pub preemptions: u32,
    /// KV tokens whose pages survived its preemptions (paged retention).
    pub retained_tokens: usize,
    /// KV tokens re-prefilled across its re-admissions.
    pub reprefilled_tokens: usize,
    /// Prompt tokens the shared-prefix cache served at its admissions.
    pub prefix_hit_tokens: usize,
    /// Tokens delivered before any deadline was blown (all of them for a
    /// request that attained its SLO, or carried none).
    pub good_tokens: usize,
    /// Whether every deadline the request carried was met (trivially true
    /// without deadlines).
    pub slo_attained: bool,
}

/// What one engine step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Step index (0-based).
    pub index: usize,
    /// Requests decoding in this step (0 for an idle tick while the
    /// engine waits on future arrivals).
    pub batch: usize,
    /// Tokens generated in this step. Equals [`batch`](Self::batch) except
    /// while chunked prefill is in flight: a slot still building its
    /// prompt contributes prefill work but no token.
    pub decoded: usize,
    /// Total context tokens attended over in this step — the step's
    /// attention work. Slots mid-chunked-prefill contribute their built
    /// frontier.
    pub context_tokens: usize,
    /// Cycles streaming the shared weights.
    pub weight_cycles: u64,
    /// Cycles of batched attention (requests share the lanes serially).
    pub attention_cycles: u64,
    /// Cycles prefilling freshly admitted requests' prompts (0 unless the
    /// engine prices prefill). Scales with the share of each prompt the
    /// prefix cache could *not* serve, so prefix caching shrinks it.
    pub prefill_cycles: u64,
    /// Cycles rebuilding KV caches of re-admitted (preempted) requests —
    /// the step-model charge that makes eviction never free. Scales with
    /// the *dropped* share of each victim's context, so paged retention
    /// shrinks it while full re-prefill pays for the whole context.
    pub reprefill_cycles: u64,
    /// Cycles copying swapped KV back from the modeled host tier for
    /// re-admitted requests (0 without a host tier). Replaces the
    /// re-prefill charge for the tokens that survived off-device.
    pub swap_cycles: u64,
    /// Cycles transferring shipped KV pages across shards (0 without
    /// shipping). Replaces the prefill/re-prefill charge for the tokens
    /// whose pages arrived from a sibling shard.
    pub ship_cycles: u64,
}

impl StepReport {
    /// An all-zero idle tick at `index`: the shape of a step in which the
    /// engine only advanced time (waiting on future arrivals, or kept in
    /// lockstep by a cluster while its peers work).
    #[must_use]
    pub fn idle(index: usize) -> Self {
        Self {
            index,
            batch: 0,
            decoded: 0,
            context_tokens: 0,
            weight_cycles: 0,
            attention_cycles: 0,
            prefill_cycles: 0,
            reprefill_cycles: 0,
            swap_cycles: 0,
            ship_cycles: 0,
        }
    }

    /// Total cycles of the step.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.weight_cycles
            + self.attention_cycles
            + self.prefill_cycles
            + self.reprefill_cycles
            + self.swap_cycles
            + self.ship_cycles
    }
}

/// Aggregate outcome of a served workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Name of the scheduling policy that produced this run.
    pub policy: String,
    /// Per-step records, in order.
    pub steps: Vec<StepReport>,
    /// Per-request lifecycle records, in completion order.
    pub requests: Vec<RequestStats>,
    /// Total engine cycles across all steps.
    pub total_cycles: u64,
    /// Tokens generated across all requests.
    pub tokens_generated: usize,
    /// Total evictions the scheduler performed.
    pub preemptions: usize,
    /// Prompt tokens demanded across every admission the engine performed
    /// — each admission (first or re-) demands the request's full prompt.
    /// Unlike a sum over finished requests, this counts in-flight
    /// admissions too, so hit rates stay in `[0, 1]` on truncated runs.
    pub admitted_prompt_tokens: usize,
    /// Prompt tokens the shared-prefix cache served across every
    /// admission — the same population as
    /// [`admitted_prompt_tokens`](Self::admitted_prompt_tokens), so the
    /// ratio is a well-formed rate even mid-run.
    pub admitted_hit_tokens: usize,
    /// Requests refused at admission time because their TTFT deadline had
    /// already elapsed in the queue (only under the opt-in
    /// [`reject_expired_ttft`](super::ServingConfig::reject_expired_ttft)
    /// flag).
    pub rejections: usize,
    /// Aggregate pruning statistics over every simulated attention step.
    pub prune: PruneStats,
}

impl ServingReport {
    /// End-to-end throughput in generated tokens per second at `clock_hz`.
    #[must_use]
    pub fn tokens_per_second(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.tokens_generated as f64 / (self.total_cycles as f64 / clock_hz)
    }

    /// Mean decode-step latency in cycles.
    #[must_use]
    pub fn mean_step_cycles(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.total_cycles as f64 / self.steps.len() as f64
    }

    /// Mean steps finished requests waited in the queue before admission.
    #[must_use]
    pub fn mean_queue_wait_steps(&self) -> f64 {
        self.mean_session(|s| s.queue_wait_steps as f64)
    }

    /// Total KV re-prefill cycles charged across all steps — the price of
    /// every eviction, which paged retention exists to shrink.
    #[must_use]
    pub fn total_reprefill_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.reprefill_cycles).sum()
    }

    /// Total prompt-prefill cycles charged across all steps — the cost
    /// prefix caching exists to shrink (0 unless the engine prices
    /// prefill).
    #[must_use]
    pub fn total_prefill_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.prefill_cycles).sum()
    }

    /// Total batched-attention cycles charged across all steps — together
    /// with [`total_prefill_cycles`](Self::total_prefill_cycles) and
    /// [`total_reprefill_cycles`](Self::total_reprefill_cycles), the
    /// charged side of the charged-vs-measured cycle cross-check the
    /// real-token serving path pins.
    #[must_use]
    pub fn total_attention_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.attention_cycles).sum()
    }

    /// Total prompt tokens the shared-prefix cache served across all
    /// requests.
    #[must_use]
    pub fn total_prefix_hit_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.prefix_hit_tokens).sum()
    }

    /// Share of all prompt-prefill demand the shared-prefix cache served,
    /// in `[0, 1]` (0 when nothing was admitted). Both sides are counted
    /// *at admission* — demand by
    /// [`admitted_prompt_tokens`](Self::admitted_prompt_tokens), service
    /// by [`admitted_hit_tokens`](Self::admitted_hit_tokens) — so the
    /// ratio is well-formed even on truncated runs, mirroring the
    /// cluster-side accounting. The previous normalization derived demand
    /// as `prompt_len × (preemptions + 1)` over *finished* requests,
    /// which reported 0 before the first completion, ignored in-flight
    /// demand, and overcounted re-admissions that re-prefill only the
    /// suffix dropped past the retained/swapped prefix. On a drained run
    /// without rejections the two normalizations agree.
    #[must_use]
    pub fn prefix_hit_rate(&self) -> f64 {
        if self.admitted_prompt_tokens == 0 {
            return 0.0;
        }
        self.admitted_hit_tokens as f64 / self.admitted_prompt_tokens as f64
    }

    /// Total host-tier copy-back cycles charged across all steps — the
    /// priced alternative to the re-prefill bill that swapping replaces.
    #[must_use]
    pub fn total_swap_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.swap_cycles).sum()
    }

    /// Total cross-shard transfer cycles charged across all steps.
    #[must_use]
    pub fn total_ship_cycles(&self) -> u64 {
        self.steps.iter().map(|s| s.ship_cycles).sum()
    }

    /// Total KV tokens copied back from the host tier across all requests.
    #[must_use]
    pub fn total_swapped_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.swapped_tokens).sum()
    }

    /// Total KV tokens shipped across shards for all requests.
    #[must_use]
    pub fn total_shipped_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.shipped_tokens).sum()
    }

    /// Total KV tokens that survived preemptions across all requests.
    #[must_use]
    pub fn total_retained_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.retained_tokens).sum()
    }

    /// Total KV tokens re-prefilled after preemptions across all requests.
    #[must_use]
    pub fn total_reprefilled_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.reprefilled_tokens).sum()
    }

    /// Mean time-to-first-token of finished requests, in steps.
    #[must_use]
    pub fn mean_ttft_steps(&self) -> f64 {
        self.mean_session(|s| s.time_to_first_token_steps as f64)
    }

    /// Mean time-to-first-token of finished requests, in cycles: for each
    /// request, the total cycles of the steps from when it became
    /// schedulable through the step that produced its first token.
    #[must_use]
    pub fn mean_ttft_cycles(&self) -> f64 {
        let mut sum = 0u64;
        let mut n = 0usize;
        for r in &self.requests {
            if let Some(first) = r.first_token_at {
                sum += self.steps[r.enqueued_at..=first]
                    .iter()
                    .map(StepReport::total_cycles)
                    .sum::<u64>();
                n += 1;
            }
        }
        if n == 0 {
            0.0
        } else {
            sum as f64 / n as f64
        }
    }

    /// Tokens delivered within SLO across all finished requests (every
    /// token of a deadline-free request counts).
    #[must_use]
    pub fn total_good_tokens(&self) -> usize {
        self.requests.iter().map(|r| r.good_tokens).sum()
    }

    /// Goodput under SLO in tokens per second at `clock_hz`: like
    /// [`tokens_per_second`](Self::tokens_per_second) but counting only
    /// tokens delivered before their request blew a deadline.
    #[must_use]
    pub fn goodput_tokens_per_second(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.total_good_tokens() as f64 / (self.total_cycles as f64 / clock_hz)
    }

    /// Share of deadline-carrying requests that met every deadline, in
    /// `[0, 1]` (1 when no request carried a deadline — nothing was
    /// promised, nothing was missed).
    #[must_use]
    pub fn deadline_attainment(&self) -> f64 {
        let carrying: Vec<&RequestStats> =
            self.requests.iter().filter(|r| r.has_deadline()).collect();
        if carrying.is_empty() {
            return 1.0;
        }
        carrying.iter().filter(|r| r.slo_attained()).count() as f64 / carrying.len() as f64
    }

    /// The p99 time-to-first-token across finished requests, in steps
    /// (nearest-rank percentile; 0 when nothing produced a token). The
    /// tail-latency number chunked prefill exists to protect.
    #[must_use]
    pub fn ttft_p99_steps(&self) -> usize {
        let mut ttfts: Vec<usize> = self
            .requests
            .iter()
            .filter_map(|r| Some(r.first_token_at? - r.enqueued_at + 1))
            .collect();
        if ttfts.is_empty() {
            return 0;
        }
        ttfts.sort_unstable();
        let rank = (ttfts.len() as f64 * 0.99).ceil() as usize;
        ttfts[rank.clamp(1, ttfts.len()) - 1]
    }

    /// The largest prefill charge any single step carried, in cycles —
    /// the worst-case decode stall co-resident requests suffered while a
    /// prompt was being built. One lump prefill makes this the whole
    /// prompt's charge; chunking caps it near one chunk's worth.
    #[must_use]
    pub fn max_prefill_stall_cycles(&self) -> u64 {
        self.steps
            .iter()
            .map(|s| s.prefill_cycles)
            .max()
            .unwrap_or(0)
    }

    fn mean_session(&self, f: impl Fn(&SessionStats) -> f64) -> f64 {
        let sessions: Vec<SessionStats> = self
            .requests
            .iter()
            .filter_map(RequestStats::session)
            .collect();
        if sessions.is_empty() {
            return 0.0;
        }
        sessions.iter().map(f).sum::<f64>() / sessions.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A finished-request record with the given prompt/preemption/hit
    /// shape and every other field inert.
    fn request(id: u64, prompt_len: usize, preemptions: u32, hits: usize) -> RequestStats {
        RequestStats {
            id,
            prompt_len,
            generated: 1,
            priority: 0,
            client_id: 0,
            enqueued_at: 0,
            admitted_at: Some(0),
            first_token_at: Some(0),
            finished_at: Some(0),
            preemptions,
            attention_cycles: 0,
            prefill_cycles: 0,
            reprefill_cycles: 0,
            prefix_hit_tokens: hits,
            retained_tokens: 0,
            reprefilled_tokens: 0,
            swapped_tokens: 0,
            swap_cycles: 0,
            shipped_tokens: 0,
            ship_cycles: 0,
            ttft_deadline: None,
            itl_deadline: None,
            good_tokens: 1,
            slo_violated: false,
        }
    }

    fn report(requests: Vec<RequestStats>, admitted: usize, hits: usize) -> ServingReport {
        ServingReport {
            policy: "fifo".to_string(),
            steps: Vec::new(),
            requests,
            total_cycles: 0,
            tokens_generated: 0,
            preemptions: 0,
            admitted_prompt_tokens: admitted,
            admitted_hit_tokens: hits,
            rejections: 0,
            prune: topick_core::PruneStats::default(),
        }
    }

    /// Hand-computed retention scenario: a 10-token request is admitted,
    /// preempted with 8 tokens of its prompt KV retained, and re-admitted
    /// adopting those 8 tokens from the cache. Demand is 10 + 10 = 20
    /// admitted prompt tokens, service is 0 + 8 = 8, so the rate is
    /// exactly 0.4.
    #[test]
    fn prefix_hit_rate_is_exact_on_a_retention_scenario() {
        let r = report(vec![request(0, 10, 1, 8)], 20, 8);
        assert!((r.prefix_hit_rate() - 0.4).abs() < 1e-12);
    }

    /// The old normalization (`prompt_len × (preemptions + 1)` over
    /// finished requests) reported 0.0 on a truncated run with every
    /// request still in flight; admission-normalized accounting reports
    /// the true in-flight rate and stays in `[0, 1]`.
    #[test]
    fn prefix_hit_rate_is_well_formed_mid_run() {
        // Nothing finished yet: 2 admissions of 16-token prompts, one of
        // them fully served by the cache.
        let r = report(Vec::new(), 32, 16);
        assert!((r.prefix_hit_rate() - 0.5).abs() < 1e-12);

        // Retention re-admissions can serve most of a prompt repeatedly;
        // the rate must still never leave [0, 1].
        let r = report(vec![request(0, 16, 3, 48)], 64, 48);
        let rate = r.prefix_hit_rate();
        assert!((0.0..=1.0).contains(&rate), "rate {rate} out of range");
        assert!((rate - 0.75).abs() < 1e-12);

        // And an empty run divides to 0, not NaN.
        assert_eq!(report(Vec::new(), 0, 0).prefix_hit_rate(), 0.0);
    }
}
