//! Requests and the arrival queue the scheduler draws from.

use super::batch_state::ActiveRequest;
use super::policy::PendingView;

/// One generation request entering the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingRequest {
    /// Caller-chosen request id (also seeds the request's workload, and
    /// the private part of its synthetic token content).
    pub id: u64,
    /// Context length at arrival (the already-processed prompt).
    pub prompt_len: usize,
    /// Tokens to generate before the request completes.
    pub max_new_tokens: usize,
    /// Scheduling priority (higher is more urgent; only priority-aware
    /// policies consult it).
    pub priority: u8,
    /// Originating client, for fair-share policies. Requests with the same
    /// `client_id` compete for the same fair slot allocation.
    pub client_id: u64,
    /// Engine step at which the request becomes visible to the scheduler.
    /// `0` means "already arrived" — the pre-redesign behavior. Later
    /// steps model open-loop traffic where work trickles in over time.
    pub arrival_step: u64,
    /// Content identity of the request's shared prompt prefix: the first
    /// [`prefix_len`](Self::prefix_len) prompt tokens are drawn from this
    /// tag's token pool, so requests with the same `(prefix_tag,
    /// prefix_len ≥ k)` share their first `k` prompt tokens — the handle
    /// prefix caching keys on (same system prompt, same few-shot
    /// template).
    pub prefix_tag: u64,
    /// How many leading prompt tokens come from the shared
    /// [`prefix_tag`](Self::prefix_tag) pool; the rest of the prompt is
    /// unique to the request. `0` (the default) makes the whole prompt
    /// private.
    pub prefix_len: usize,
    /// Time-to-first-token SLO in engine steps, measured from the step the
    /// request became schedulable (enqueue step itself included, matching
    /// [`SessionStats::time_to_first_token_steps`]). `None` (the default)
    /// means no TTFT deadline.
    ///
    /// [`SessionStats::time_to_first_token_steps`]:
    ///     super::stats::SessionStats::time_to_first_token_steps
    pub ttft_deadline: Option<u64>,
    /// Inter-token-latency SLO: the maximum steps allowed between
    /// consecutive generated tokens. `None` (the default) means no ITL
    /// deadline.
    pub itl_deadline: Option<u64>,
}

/// SplitMix64 — the deterministic mix behind the synthetic token content
/// (and, advanced over a counter, the seeded workload generators).
pub(crate) fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl ServingRequest {
    /// A request with default scheduling metadata (priority 0, client 0,
    /// immediate arrival) — equivalent to the pre-redesign struct literal.
    #[must_use]
    pub fn new(id: u64, prompt_len: usize, max_new_tokens: usize) -> Self {
        Self {
            id,
            prompt_len,
            max_new_tokens,
            priority: 0,
            client_id: 0,
            arrival_step: 0,
            prefix_tag: 0,
            prefix_len: 0,
            ttft_deadline: None,
            itl_deadline: None,
        }
    }

    /// Sets the scheduling priority (higher is more urgent).
    #[must_use]
    pub fn with_priority(mut self, priority: u8) -> Self {
        self.priority = priority;
        self
    }

    /// Sets the originating client for fair-share scheduling.
    #[must_use]
    pub fn with_client(mut self, client_id: u64) -> Self {
        self.client_id = client_id;
        self
    }

    /// Defers the request's visibility to the scheduler until `step`.
    #[must_use]
    pub fn arriving_at(mut self, step: u64) -> Self {
        self.arrival_step = step;
        self
    }

    /// Declares the first `len` prompt tokens to be the shared prefix
    /// identified by `tag` (a system prompt, a few-shot template, an
    /// earlier turn of the same chat). Requests sharing `(tag, ≥ len)`
    /// have identical leading tokens, which is what makes their full KV
    /// pages adoptable through the prefix cache.
    #[must_use]
    pub fn with_shared_prefix(mut self, tag: u64, len: usize) -> Self {
        self.prefix_tag = tag;
        self.prefix_len = len;
        self
    }

    /// Attaches a time-to-first-token deadline of `steps` engine steps
    /// (must be positive — the enqueue step itself already counts as one).
    #[must_use]
    pub fn with_ttft_deadline(mut self, steps: u64) -> Self {
        self.ttft_deadline = Some(steps.max(1));
        self
    }

    /// Attaches an inter-token deadline: consecutive generated tokens may
    /// be at most `steps` engine steps apart (clamped to at least 1).
    #[must_use]
    pub fn with_itl_deadline(mut self, steps: u64) -> Self {
        self.itl_deadline = Some(steps.max(1));
        self
    }

    /// Whether the request carries any SLO deadline — the denominator of
    /// deadline-attainment accounting.
    #[must_use]
    pub fn has_deadline(&self) -> bool {
        self.ttft_deadline.is_some() || self.itl_deadline.is_some()
    }

    /// The synthetic token id at prompt position `i`: drawn from the
    /// shared [`prefix_tag`](Self::prefix_tag) pool inside the declared
    /// prefix, and from a request-private pool (keyed by `id`) after it.
    /// Deterministic, so content identity is reproducible across runs.
    #[must_use]
    pub fn token_at(&self, i: usize) -> u64 {
        if i < self.prefix_len.min(self.prompt_len) {
            splitmix64(self.prefix_tag ^ 0x5851_F42D_4C95_7F2D ^ (i as u64).rotate_left(17))
        } else {
            splitmix64(self.id ^ 0x2545_F491_4F6C_DD1D ^ (i as u64).rotate_left(31))
        }
    }

    /// The position-chained content hashes of the request's *full* prompt
    /// pages at the given page size — `keys[j]` digests every prompt token
    /// in pages `0..=j`, so two requests agree on `keys[j]` exactly when
    /// their first `(j + 1) × page_size` prompt tokens agree. The partial
    /// tail page (and everything generated later) is excluded: those
    /// tokens will be written, so their page can never be shared.
    #[must_use]
    pub fn page_keys(&self, page_size: usize) -> Vec<u64> {
        let page_size = page_size.max(1);
        let full_pages = self.prompt_len / page_size;
        let mut keys = Vec::with_capacity(full_pages);
        let mut h = 0xcbf2_9ce4_8422_2325u64; // FNV-1a offset basis
        for page in 0..full_pages {
            for i in page * page_size..(page + 1) * page_size {
                h ^= self.token_at(i);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            keys.push(h);
        }
        keys
    }
}

/// The arrival queue: requests waiting for admission, kept sorted by
/// arrival sequence so FIFO order is always recoverable regardless of how
/// preemption re-inserts evicted work.
#[derive(Debug, Clone, Default)]
pub(crate) struct PendingQueue {
    entries: Vec<ActiveRequest>,
}

impl PendingQueue {
    /// Inserts a request, keeping the queue sorted by arrival sequence.
    /// Fresh enqueues carry the largest sequence so far and append in
    /// O(1); preempted requests binary-search back to their slot.
    pub(crate) fn push(&mut self, r: ActiveRequest) {
        let at = self
            .entries
            .partition_point(|e| e.arrival_seq < r.arrival_seq);
        self.entries.insert(at, r);
    }

    pub(crate) fn len(&self) -> usize {
        self.entries.len()
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Whether a request is visible to the scheduler at `step`: it has
    /// arrived, and it was not evicted from the batch this very step (a
    /// one-step cooldown that prevents evict/re-admit livelock).
    fn is_visible(e: &ActiveRequest, step: usize) -> bool {
        e.req.arrival_step as usize <= step && e.last_evicted_at != Some(step)
    }

    /// Whether any queued request is visible to the scheduler at `step`.
    pub(crate) fn has_visible(&self, step: usize) -> bool {
        self.entries.iter().any(|e| Self::is_visible(e, step))
    }

    /// Snapshots the visible queue for the policy, in arrival order.
    pub(crate) fn views(&self, step: usize) -> Vec<PendingView> {
        self.entries
            .iter()
            .filter(|e| Self::is_visible(e, step))
            .map(|e| PendingView {
                id: e.req.id,
                priority: e.req.priority,
                client_id: e.req.client_id,
                arrival_seq: e.arrival_seq,
                waited_steps: (step as u64).saturating_sub(e.wait_since as u64),
                remaining_tokens: e.req.max_new_tokens - e.stats.generated,
                final_context: e.final_context(),
                enqueued_at: e.stats.enqueued_at,
                last_token_at: e.last_token_at,
                ttft_deadline: e.req.ttft_deadline,
                itl_deadline: e.req.itl_deadline,
            })
            .collect()
    }

    /// The queued entries, in arrival order (including not-yet-visible
    /// future arrivals).
    pub(crate) fn entries(&self) -> &[ActiveRequest] {
        &self.entries
    }

    /// Shared access to the entry with arrival sequence `seq`, if queued
    /// (used to read a candidate's prompt-page hash chain during
    /// admission).
    pub(crate) fn get_by_seq(&self, seq: u64) -> Option<&ActiveRequest> {
        self.entries.iter().find(|e| e.arrival_seq == seq)
    }

    /// Mutable access to the entry with arrival sequence `seq`, if queued
    /// (used to restate a request's re-prefill debt when its retained KV
    /// pages are reclaimed under admission pressure).
    pub(crate) fn get_mut_by_seq(&mut self, seq: u64) -> Option<&mut ActiveRequest> {
        self.entries.iter_mut().find(|e| e.arrival_seq == seq)
    }

    /// Removes and returns the entry with arrival sequence `seq`.
    ///
    /// # Panics
    ///
    /// Panics if no entry has that sequence (policy views are built from
    /// the same queue, so a miss is an engine bug).
    pub(crate) fn remove_by_seq(&mut self, seq: u64) -> ActiveRequest {
        let at = self
            .entries
            .iter()
            .position(|e| e.arrival_seq == seq)
            .expect("pending view maps to a queued request");
        self.entries.remove(at)
    }
}
