//! Canonical request workloads shared by the benches, examples and
//! integration tests, so "the skewed workload" means the same thing in
//! all three places.

use super::queue::ServingRequest;

/// The skewed "elephant/mice" workload: `elephants` long, low-priority
/// requests from one client arrive first and fill the batch, then `mice`
/// short, high-priority requests from three other clients trickle in
/// behind them.
///
/// Both groups are heterogeneous — elephants differ in token targets (so
/// they retire at different steps) and mice differ in length, priority
/// and arrival (so admission *order* matters even without preemption, and
/// every scheduling policy produces a distinguishable schedule).
///
/// Designed for an engine with `max_batch = 4` and `max_batch_tokens =
/// 2200`: four elephants provision 2020 final-context tokens, saturating
/// both slots and most of the budget, the regime where policy and
/// preemption visibly bend the time-to-first-token profile.
#[must_use]
pub fn skewed_elephant_mice(elephants: u64, mice: u64) -> Vec<ServingRequest> {
    let mut reqs: Vec<ServingRequest> = (0..elephants)
        .map(|id| ServingRequest::new(id, 480, 16 + id as usize * 6).with_client(0))
        .collect();
    reqs.extend((0..mice).map(|i| {
        ServingRequest::new(100 + i, 48 + (i as usize % 3) * 16, 2 + (i as usize % 5))
            .with_priority(3 + (i % 3) as u8 * 3)
            .with_client(1 + i % 3)
            .arriving_at(2 + i % 4)
    }));
    reqs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_elephants_saturate_the_canonical_budget() {
        let reqs = skewed_elephant_mice(4, 12);
        assert_eq!(reqs.len(), 16);
        let elephant_final: usize = reqs[..4]
            .iter()
            .map(|r| r.prompt_len + r.max_new_tokens)
            .sum();
        assert_eq!(elephant_final, 2020);
        assert!(elephant_final <= 2200);
        // Mice are heterogeneous in every scheduling-relevant dimension.
        let mice = &reqs[4..];
        assert!(mice.iter().any(|m| m.priority != mice[0].priority));
        assert!(mice
            .iter()
            .any(|m| m.max_new_tokens != mice[0].max_new_tokens));
        assert!(mice.iter().any(|m| m.arrival_step != mice[0].arrival_step));
        assert!(mice.iter().all(|m| m.arrival_step >= 2));
    }
}
