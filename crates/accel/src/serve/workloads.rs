//! Canonical request workloads shared by the benches, examples and
//! integration tests, so "the skewed workload" means the same thing in
//! all three places.

use super::cluster::ClusterEngineBuilder;
use super::queue::ServingRequest;
use super::scenario::{Scenario, SharedPrefixChat, SkewedElephantMice};
use super::{ClusterEngine, ServingConfig, ServingEngineBuilder};
use crate::config::AccelConfig;

/// The shared-prefix "chat" workload: `tenants` tenants, each with its own
/// system prompt (a shared prefix of 96–160 tokens, full-page-aligned at
/// the canonical 16-token page size), each sending `per_tenant` requests
/// whose prompts append a short unique user turn (8–63 tokens) to the
/// tenant's prefix. Targets, priorities and staggered arrivals vary per
/// request, so every scheduling policy still has something to order.
///
/// This is the regime real serving traffic lives in — most of every
/// prompt's KV is identical across a tenant's requests — and therefore
/// the workload where prefix caching pays: with the cache on, only the
/// first request per tenant prefills its system prompt; the rest adopt
/// those pages copy-on-write and prefill only their unique suffix.
///
/// Fully deterministic in `seed` (same seed → identical request list,
/// including ids, shapes and arrivals), and **shape-stable**: each tenant
/// draws from its own seed-derived stream, so tenant `t`'s first `k`
/// requests are byte-identical no matter how many tenants or requests per
/// tenant the caller asks for. Request ids depend only on `(tenant, i)` —
/// never on who consumes the workload — which is what makes multi-shard
/// golden runs reproducible against single-engine ones.
///
/// A thin wrapper over the [`SharedPrefixChat`] scenario — same bytes,
/// pinned by the tests below and the schedule-digest goldens.
#[must_use]
pub fn shared_prefix_chat(seed: u64, tenants: u64, per_tenant: u64) -> Vec<ServingRequest> {
    SharedPrefixChat {
        tenants,
        per_tenant,
    }
    .generate(seed)
}

/// The canonical engine configuration for serving [`shared_prefix_chat`]:
/// the exact setup the workspace equivalence/acceptance tests,
/// `examples/batch_serving.rs` and the `serving_throughput` bench all
/// measure, differing only in whether the prefix cache is on. Prompt
/// prefill is priced (`prefill_factor` 1.0) so the cache's saving is
/// visible in cycles; callers may still adjust the returned builder
/// (e.g. disable event recording) before building.
#[must_use]
pub fn shared_prefix_engine(accel: AccelConfig, prefix_cache: bool) -> ServingEngineBuilder {
    let cfg = shared_prefix_config(accel, prefix_cache);
    ServingEngineBuilder::new(cfg.accel.clone()).config(cfg)
}

/// The cluster counterpart of [`shared_prefix_engine`]: every shard runs
/// the exact canonical per-shard configuration (both builders derive from
/// one shared config constructor), so multi-shard runs stay comparable
/// with the single-engine golden/equivalence tests — one shard of this
/// builder *is* `shared_prefix_engine`. Callers set shard count, routing
/// and stealing on the returned builder.
#[must_use]
pub fn shared_prefix_cluster(accel: AccelConfig, prefix_cache: bool) -> ClusterEngineBuilder {
    let cfg = shared_prefix_config(accel, prefix_cache);
    ClusterEngine::builder(cfg.accel.clone()).config(cfg)
}

/// The single source of the canonical shared-prefix serving
/// configuration both builders above derive from, so single-engine and
/// cluster runs can never drift apart.
fn shared_prefix_config(accel: AccelConfig, prefix_cache: bool) -> ServingConfig {
    let mut cfg = ServingConfig::new(accel);
    cfg.heads = 4;
    cfg.weight_bytes = 10_000_000;
    cfg.admission.max_batch = 6;
    cfg.admission.max_batch_tokens = 1600;
    cfg.admission.page_size = 16;
    cfg.admission.prefix_cache = prefix_cache;
    cfg.seed = 7;
    cfg.prefill_factor = 1.0;
    cfg
}

/// The skewed "elephant/mice" workload: `elephants` long, low-priority
/// requests from one client arrive first and fill the batch, then `mice`
/// short, high-priority requests from three other clients trickle in
/// behind them.
///
/// Both groups are heterogeneous — elephants differ in token targets (so
/// they retire at different steps) and mice differ in length, priority
/// and arrival (so admission *order* matters even without preemption, and
/// every scheduling policy produces a distinguishable schedule).
///
/// Designed for an engine with `max_batch = 4` and `max_batch_tokens =
/// 2200`: four elephants provision 2020 final-context tokens, saturating
/// both slots and most of the budget, the regime where policy and
/// preemption visibly bend the time-to-first-token profile.
///
/// A thin wrapper over the [`SkewedElephantMice`] scenario (the stream is
/// seed-independent by design) — same bytes, pinned by the goldens.
#[must_use]
pub fn skewed_elephant_mice(elephants: u64, mice: u64) -> Vec<ServingRequest> {
    SkewedElephantMice { elephants, mice }.generate(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_elephants_saturate_the_canonical_budget() {
        let reqs = skewed_elephant_mice(4, 12);
        assert_eq!(reqs.len(), 16);
        let elephant_final: usize = reqs[..4]
            .iter()
            .map(|r| r.prompt_len + r.max_new_tokens)
            .sum();
        assert_eq!(elephant_final, 2020);
        assert!(elephant_final <= 2200);
        // Mice are heterogeneous in every scheduling-relevant dimension.
        let mice = &reqs[4..];
        assert!(mice.iter().any(|m| m.priority != mice[0].priority));
        assert!(mice
            .iter()
            .any(|m| m.max_new_tokens != mice[0].max_new_tokens));
        assert!(mice.iter().any(|m| m.arrival_step != mice[0].arrival_step));
        assert!(mice.iter().all(|m| m.arrival_step >= 2));
    }

    #[test]
    fn shared_prefix_chat_is_deterministic_in_its_seed() {
        let a = shared_prefix_chat(42, 4, 6);
        let b = shared_prefix_chat(42, 4, 6);
        assert_eq!(a, b, "same seed must reproduce the identical workload");
        // Byte-for-byte, not just structurally: every field of every
        // request, in order.
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
        let c = shared_prefix_chat(43, 4, 6);
        assert_ne!(a, c, "different seeds must differ");
        assert_eq!(a.len(), 24);
    }

    #[test]
    fn skewed_elephant_mice_is_deterministic() {
        let a = skewed_elephant_mice(4, 12);
        let b = skewed_elephant_mice(4, 12);
        assert_eq!(format!("{a:?}"), format!("{b:?}"));
    }

    #[test]
    fn tenant_streams_are_stable_across_workload_shapes() {
        // A tenant's requests (ids included) must not change when the
        // caller asks for more tenants or more requests per tenant — the
        // property that keeps multi-shard goldens reproducible when a
        // sweep widens the workload.
        let narrow = shared_prefix_chat(9, 2, 3);
        let more_tenants = shared_prefix_chat(9, 5, 3);
        for tenant in 0..2u64 {
            let a: Vec<_> = narrow.iter().filter(|r| r.client_id == tenant).collect();
            let b: Vec<_> = more_tenants
                .iter()
                .filter(|r| r.client_id == tenant)
                .collect();
            assert_eq!(a, b, "tenant {tenant} changed when tenants were added");
        }
        let deeper = shared_prefix_chat(9, 2, 7);
        for tenant in 0..2u64 {
            let a: Vec<_> = narrow.iter().filter(|r| r.client_id == tenant).collect();
            let b: Vec<_> = deeper
                .iter()
                .filter(|r| r.client_id == tenant)
                .take(3)
                .collect();
            assert_eq!(a, b, "tenant {tenant} changed when the workload deepened");
        }
    }

    #[test]
    fn shared_prefix_chat_shares_within_and_not_across_tenants() {
        let reqs = shared_prefix_chat(7, 3, 5);
        for tenant in 0..3u64 {
            let group: Vec<_> = reqs.iter().filter(|r| r.client_id == tenant).collect();
            assert_eq!(group.len(), 5);
            // One tag and one prefix length per tenant, page-aligned at
            // the canonical 16-token page size and inside every prompt.
            assert!(group.iter().all(|r| r.prefix_tag == group[0].prefix_tag));
            assert!(group.iter().all(|r| r.prefix_len == group[0].prefix_len));
            assert_eq!(group[0].prefix_len % 16, 0);
            assert!((96..=160).contains(&group[0].prefix_len));
            assert!(group.iter().all(|r| r.prompt_len > r.prefix_len));
            // Identical leading page hashes within the tenant, so the
            // prefix cache can actually adopt across its requests...
            let keys: Vec<_> = group.iter().map(|r| r.page_keys(16)).collect();
            let shared_pages = group[0].prefix_len / 16;
            for k in &keys[1..] {
                assert_eq!(k[..shared_pages], keys[0][..shared_pages]);
            }
        }
        // ...and nothing shared between tenants.
        let (a, b) = (
            reqs.iter().find(|r| r.client_id == 0).unwrap(),
            reqs.iter().find(|r| r.client_id == 1).unwrap(),
        );
        assert_ne!(a.page_keys(16)[0], b.page_keys(16)[0]);
    }

    #[test]
    fn unique_ids_across_the_whole_workload() {
        let reqs = shared_prefix_chat(1, 5, 8);
        let ids: std::collections::BTreeSet<u64> = reqs.iter().map(|r| r.id).collect();
        assert_eq!(ids.len(), reqs.len());
    }
}
