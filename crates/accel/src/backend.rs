//! The cycle-level simulator packaged as an
//! [`AttentionBackend`] — the third
//! implementation of the workspace's unified attention interface, next to
//! the functional kernels and SpAtten's top-k baseline.
//!
//! Driving a [`TransformerModel`](topick_model::TransformerModel) forward
//! pass with this backend yields functional outputs *and* a cycle/energy
//! account of every attention step, with no cache-row cloning anywhere on
//! the path: the model's contiguous [`HeadCache`](topick_model::HeadCache)
//! buffers flow straight into the simulator as views.

use topick_core::{PruneStats, QVector, QuantBuffer};
use topick_model::{AttentionBackend, KvView};

use crate::config::AccelConfig;
use crate::engine::ToPickAccelerator;

/// An attention backend that runs every `attend` call through the
/// cycle-level ToPick simulator, accumulating cycles, pruning statistics
/// and energy alongside the functional output.
#[derive(Debug, Clone)]
pub struct SimulatedAttention {
    accel: ToPickAccelerator,
    cycles: u64,
    energy_pj: f64,
    stats: PruneStats,
    key_buf: QuantBuffer,
}

impl SimulatedAttention {
    /// Creates the backend around an accelerator configuration.
    #[must_use]
    pub fn new(cfg: AccelConfig) -> Self {
        let chunks = cfg.precision.num_chunks();
        Self {
            accel: ToPickAccelerator::new(cfg),
            cycles: 0,
            energy_pj: 0.0,
            stats: PruneStats::new(0, chunks),
            key_buf: QuantBuffer::new(),
        }
    }

    /// The accelerator configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        self.accel.config()
    }

    /// Accelerator cycles accumulated across all `attend` calls.
    #[must_use]
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Total simulated energy accumulated across all `attend` calls, in pJ.
    #[must_use]
    pub fn energy_pj(&self) -> f64 {
        self.energy_pj
    }
}

impl AttentionBackend for SimulatedAttention {
    fn attend(&mut self, q: &[f32], kv: KvView<'_>) -> Vec<f32> {
        let pc = self.accel.config().precision;
        let qv = QVector::quantize(q, pc);
        let keys = self
            .key_buf
            .quantize(kv.keys().data(), kv.dim(), pc)
            .expect("non-empty cache");
        let r = self.accel.run_attention(&qv, &keys, kv.values());
        self.key_buf.reclaim(keys);
        let r = r.expect("validated dims");
        self.cycles += r.cycles;
        self.energy_pj += r.energy.total_pj();
        self.stats.merge(&r.prune);
        r.output
    }

    fn accumulated_stats(&self) -> Option<&PruneStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        let chunks = self.accel.config().precision.num_chunks();
        self.stats = PruneStats::new(0, chunks);
        self.cycles = 0;
        self.energy_pj = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelMode;
    use topick_model::{ExactAttention, HeadCache, SynthInstance, SynthProfile};

    fn cache_from_instance(n: usize, seed: u64) -> (Vec<f32>, HeadCache) {
        let inst = SynthInstance::generate(&SynthProfile::realistic(n, 64), seed);
        let mut cache = HeadCache::new(64);
        for i in 0..n {
            cache.push(inst.key_row(i), inst.value_row(i));
        }
        (inst.query, cache)
    }

    #[test]
    fn simulated_backend_tracks_exact_attention() {
        let (q, cache) = cache_from_instance(96, 3);
        let mut exact = ExactAttention::new();
        let mut sim =
            SimulatedAttention::new(AccelConfig::paper(AccelMode::OutOfOrder, 1e-4).unwrap());
        let a = exact.attend(&q, cache.view());
        let b = sim.attend(&q, cache.view());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 0.1, "{x} vs {y}");
        }
        assert!(sim.cycles() > 0);
        assert!(sim.energy_pj() > 0.0);
        assert_eq!(sim.accumulated_stats().unwrap().tokens, 96);
    }

    #[test]
    fn reset_clears_accumulators() {
        let (q, cache) = cache_from_instance(32, 5);
        let mut sim =
            SimulatedAttention::new(AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap());
        let _ = sim.attend(&q, cache.view());
        sim.reset_stats();
        assert_eq!(sim.cycles(), 0);
        assert_eq!(sim.accumulated_stats().unwrap().tokens, 0);
    }
}
