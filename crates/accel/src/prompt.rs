//! Prompt-phase execution (paper §4): "During the prompt phase, all K/V
//! vectors are preloaded into the on-chip buffer to be reused across
//! queries."
//!
//! Unlike the memory-bound generation phase, the prompt phase is
//! compute-bound: the whole prompt's K/V fits the 2×192 KB buffers and
//! every query attends over it from SRAM. Token-Picker leaves this phase
//! unmodified, so the model here is the shared baseline for both designs —
//! it exists to complete the accelerator and to show *why* the paper
//! focuses on generation.

use topick_core::{softmax, CoreError, QMatrix, QVector, Rows};
use topick_dram::DramSim;
use topick_energy::{EnergyBreakdown, EventCounts, EventEnergies};

use crate::config::AccelConfig;

/// Result of simulating one head's prompt phase.
#[derive(Debug, Clone, PartialEq)]
pub struct PromptPhaseResult {
    /// Accelerator cycles: KV preload + score compute + output compute.
    pub cycles: u64,
    /// Cycles of the DRAM preload portion.
    pub preload_cycles: u64,
    /// Cycles of the compute portion.
    pub compute_cycles: u64,
    /// On-chip event counts.
    pub events: EventCounts,
    /// Energy breakdown.
    pub energy: EnergyBreakdown,
    /// Attention outputs, one row per query.
    pub outputs: Vec<Vec<f32>>,
}

/// Simulates the prompt phase of one head: preload K/V from DRAM, then for
/// every query compute all causal scores and the attention output from the
/// on-chip buffers.
///
/// Query `i` attends over tokens `0..=i` (causal masking).
///
/// # Errors
///
/// Returns [`CoreError::DimensionMismatch`] on shape mismatches,
/// [`CoreError::EmptyKeySet`] if there are no tokens, and
/// [`CoreError::InvalidThreshold`] never (listed for parity with the
/// generation path).
pub fn run_prompt_phase(
    cfg: &AccelConfig,
    queries: &[QVector],
    keys: &QMatrix,
    values: Rows<'_>,
) -> Result<PromptPhaseResult, CoreError> {
    let n = keys.num_tokens();
    if n == 0 {
        return Err(CoreError::EmptyKeySet);
    }
    if queries.len() != n || values.num_rows() != n {
        return Err(CoreError::DimensionMismatch {
            expected: n,
            actual: queries.len().min(values.num_rows()),
        });
    }
    let dim = keys.dim();
    for q in queries {
        if q.len() != dim {
            return Err(CoreError::DimensionMismatch {
                expected: dim,
                actual: q.len(),
            });
        }
    }

    let mut events = EventCounts::default();
    let row_bytes = (dim as u64 * u64::from(cfg.precision.total_bits())).div_ceil(8);
    let burst = u64::from(cfg.dram.access_bytes);

    // (1) Preload: stream all K and V rows sequentially into the buffers.
    let total_bursts = 2 * n as u64 * row_bytes.div_ceil(burst);
    let mut dram = DramSim::new(cfg.dram.clone());
    let mut issued = 0u64;
    let mut addr = 0u64;
    while issued < total_bursts || !dram.is_idle() {
        while issued < total_bursts && dram.try_enqueue(issued, addr) {
            issued += 1;
            addr += burst;
        }
        dram.tick();
        while dram.pop_completed().is_some() {}
    }
    let preload_cycles = dram.cycle().div_ceil(cfg.clock_ratio);
    events.buffer_write_bytes += total_bursts * burst;

    // (2) Compute: query i needs i+1 score dots and i+1 value MACs, all
    // from SRAM; the lanes complete `lanes` dots per cycle.
    let total_dots: u64 = (1..=n as u64).sum::<u64>() * 2; // scores + value MACs
    let compute_cycles = total_dots.div_ceil(cfg.lanes as u64);
    events.mac_12x12 += total_dots * dim as u64;
    events.exp += (1..=n as u64).sum::<u64>(); // softmax exps
    events.buffer_read_bytes += (1..=n as u64).sum::<u64>() * 2 * row_bytes;

    // Functional outputs.
    let scale = topick_core::score_scale(&queries[0], keys);
    let mut outputs = Vec::with_capacity(n);
    for (i, q) in queries.iter().enumerate() {
        let scores: Vec<f64> = (0..=i)
            .map(|t| q.dot_codes(keys.row(t)) as f64 * scale)
            .collect();
        let probs = softmax(&scores);
        let mut out = vec![0f32; dim];
        for (t, &p) in probs.iter().enumerate() {
            for (o, &v) in out.iter_mut().zip(values.row(t)) {
                *o += p as f32 * v;
            }
        }
        outputs.push(out);
    }

    let energies = EventEnergies::node_65nm();
    let energy = EnergyBreakdown {
        dram_pj: dram.stats().energy_pj(&cfg.dram, dram.cycle()),
        buffer_pj: events.buffer_energy_pj(&energies),
        compute_pj: events.compute_energy_pj(&energies),
    };
    Ok(PromptPhaseResult {
        cycles: preload_cycles + compute_cycles,
        preload_cycles,
        compute_cycles,
        events,
        energy,
        outputs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use topick_core::{exact_probabilities, PrecisionConfig};

    fn prompt_workload(n: usize) -> (Vec<QVector>, QMatrix, Vec<f32>) {
        let pc = PrecisionConfig::paper();
        let dim = 64;
        let mut s = 0xB00Fu64;
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            ((s >> 33) as f32 / 2_147_483_648.0) * 2.0 - 1.0
        };
        let queries: Vec<QVector> = (0..n)
            .map(|_| QVector::quantize(&(0..dim).map(|_| next()).collect::<Vec<_>>(), pc))
            .collect();
        let keys: Vec<f32> = (0..n * dim).map(|_| next()).collect();
        let values: Vec<f32> = (0..n * dim).map(|_| next()).collect();
        (
            queries,
            QMatrix::quantize_flat(&keys, dim, pc).expect("non-empty"),
            values,
        )
    }

    #[test]
    fn outputs_match_causal_attention() {
        let (queries, keys, values) = prompt_workload(12);
        let cfg = AccelConfig::baseline();
        let values = Rows::new(&values, 64);
        let r = run_prompt_phase(&cfg, &queries, &keys, values).unwrap();
        assert_eq!(r.outputs.len(), 12);
        // The last query attends over everything: compare with the exact
        // full-context attention.
        let probs = exact_probabilities(&queries[11], &keys);
        let mut expect = vec![0f32; 64];
        for (t, &p) in probs.iter().enumerate() {
            for (o, &v) in expect.iter_mut().zip(values.row(t)) {
                *o += p as f32 * v;
            }
        }
        for (a, b) in r.outputs[11].iter().zip(&expect) {
            // f32 accumulation order differs between the two paths.
            assert!((a - b).abs() < 2e-3, "{a} vs {b}");
        }
        // The first query attends only over token 0.
        for (a, b) in r.outputs[0].iter().zip(values.row(0)) {
            assert!((a - b).abs() < 1e-4);
        }
    }

    #[test]
    fn prompt_phase_is_compute_dominated() {
        // Once the prompt is long, compute cycles (O(n^2)) exceed the
        // preload (O(n)) — the opposite regime from generation.
        let (queries, keys, values) = prompt_workload(128);
        let cfg = AccelConfig::baseline();
        let r = run_prompt_phase(&cfg, &queries, &keys, Rows::new(&values, 64)).unwrap();
        assert!(
            r.compute_cycles > r.preload_cycles,
            "compute {} vs preload {}",
            r.compute_cycles,
            r.preload_cycles
        );
        assert_eq!(r.cycles, r.compute_cycles + r.preload_cycles);
    }

    #[test]
    fn shape_mismatches_rejected() {
        let (queries, keys, values) = prompt_workload(8);
        let cfg = AccelConfig::baseline();
        let full = Rows::new(&values, 64);
        let half = Rows::new(&values[..4 * 64], 64);
        assert!(run_prompt_phase(&cfg, &queries[..4], &keys, full).is_err());
        assert!(run_prompt_phase(&cfg, &queries, &keys, half).is_err());
    }
}
