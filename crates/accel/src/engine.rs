//! The cycle-level ToPick engine: out-of-order step-0 score calculation
//! over on-demand DRAM chunk requests, followed by the step-1 weighted
//! value sum — plus the baseline, estimate-only and blocking variants used
//! in the paper's evaluation.
//!
//! The simulator co-simulates function and timing: pruning decisions are
//! made with the same conservative estimator as `topick-core`, but in DRAM
//! *arrival order*, exactly as the hardware's RPDU sees them.

use std::collections::{HashMap, VecDeque};

use topick_core::{
    should_prune, softmax, weighted_value_sum, CoreError, KeptToken, LogDenominator, MarginTable,
    PruneStats, QMatrix, QVector, Rows,
};
use topick_dram::DramSim;
use topick_energy::{EnergyBreakdown, EventCounts, EventEnergies};

use crate::config::{AccelConfig, AccelMode};
use crate::layout::KvLayout;
use crate::result::AttentionStepResult;

const V_FLAG: u64 = 1 << 63;

fn k_req_id(token: usize, chunk: u32, burst: u64) -> u64 {
    ((token as u64) << 16) | (u64::from(chunk) << 8) | burst
}

fn v_req_id(token: usize, burst: u64) -> u64 {
    V_FLAG | ((token as u64) << 16) | burst
}

fn decode_req(id: u64) -> (bool, usize, u32, u64) {
    let is_v = id & V_FLAG != 0;
    let id = id & !V_FLAG;
    let token = (id >> 16) as usize;
    let chunk = ((id >> 8) & 0xFF) as u32;
    let burst = id & 0xFF;
    (is_v, token, chunk, burst)
}

/// The ToPick accelerator simulator.
///
/// # Examples
///
/// ```
/// use topick_accel::{AccelConfig, AccelMode, ToPickAccelerator};
/// use topick_core::{PrecisionConfig, QMatrix, QVector};
///
/// let pc = PrecisionConfig::paper();
/// let query = QVector::quantize(&vec![0.5; 64], pc);
/// let rows: Vec<f32> = (0..32).flat_map(|i| vec![0.01 * i as f32; 64]).collect();
/// let keys = QMatrix::quantize_flat(&rows, 64, pc)?;
/// let values = vec![1.0f32; 32 * 64];
///
/// let accel = ToPickAccelerator::new(AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?);
/// let result = accel.run_attention(&query, &keys, topick_core::Rows::new(&values, 64))?;
/// assert!(result.cycles > 0);
/// # Ok::<(), topick_core::CoreError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ToPickAccelerator {
    cfg: AccelConfig,
}

/// Mutable machinery shared by every mode during one run.
#[derive(Debug)]
struct RunState {
    dram: DramSim,
    layout: KvLayout,
    clock_ratio: u64,
    cycle: u64,
    events: EventCounts,
    /// Bursts arrived per (token, chunk) K transfer.
    k_arrivals: HashMap<(usize, u32), u64>,
    /// Bursts arrived per token V transfer.
    v_arrivals: HashMap<usize, u64>,
    /// K chunk evaluations whose data is fully on-chip, per lane.
    k_ready: Vec<VecDeque<(usize, u32)>>,
    /// V rows fully on-chip awaiting the weighted-sum MAC, per lane.
    v_ready: Vec<VecDeque<usize>>,
}

impl RunState {
    fn new(cfg: &AccelConfig, n: usize, dim: usize) -> Self {
        let chunk_bytes = (dim as u64 * u64::from(cfg.precision.chunk_bits())).div_ceil(8);
        let row_bytes = (dim as u64 * u64::from(cfg.precision.total_bits())).div_ceil(8);
        let burst = u64::from(cfg.dram.access_bytes);
        let layout = KvLayout::new(n, chunk_bytes, row_bytes, cfg.precision.num_chunks(), burst);
        Self {
            dram: DramSim::new(cfg.dram.clone()),
            layout,
            clock_ratio: cfg.clock_ratio,
            cycle: 0,
            events: EventCounts::default(),
            k_arrivals: HashMap::new(),
            v_arrivals: HashMap::new(),
            k_ready: (0..cfg.lanes).map(|_| VecDeque::new()).collect(),
            v_ready: (0..cfg.lanes).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Advances one accelerator cycle: runs the DRAM for `clock_ratio`
    /// memory cycles and routes completions to the lane ready queues.
    fn advance_cycle(&mut self, lanes: usize, burst_bytes: u64) {
        for _ in 0..self.clock_ratio {
            self.dram.tick();
        }
        while let Some(c) = self.dram.pop_completed() {
            self.events.buffer_write_bytes += burst_bytes;
            let (is_v, token, chunk, _burst) = decode_req(c.id);
            if is_v {
                let cnt = self.v_arrivals.entry(token).or_insert(0);
                *cnt += 1;
                if *cnt == self.layout.v_bursts_per_row() {
                    self.v_ready[token % lanes].push_back(token);
                }
            } else {
                let cnt = self.k_arrivals.entry((token, chunk)).or_insert(0);
                *cnt += 1;
                if *cnt == self.layout.k_bursts_per_chunk() {
                    // chunks_known for the evaluation = chunk index + 1.
                    self.k_ready[token % lanes].push_back((token, chunk + 1));
                }
            }
        }
        self.cycle += 1;
    }
}

impl ToPickAccelerator {
    /// Creates a simulator with the given configuration.
    #[must_use]
    pub fn new(cfg: AccelConfig) -> Self {
        Self { cfg }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &AccelConfig {
        &self.cfg
    }

    /// Simulates one attention step (one query over one head's KV cache).
    ///
    /// # Errors
    ///
    /// Returns [`CoreError::DimensionMismatch`] if the query length differs
    /// from the key dimension or the value rows are ragged, and
    /// [`CoreError::EmptyKeySet`] for an empty cache.
    pub fn run_attention(
        &self,
        query: &QVector,
        keys: &QMatrix,
        values: Rows<'_>,
    ) -> Result<AttentionStepResult, CoreError> {
        if query.len() != keys.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: keys.dim(),
                actual: query.len(),
            });
        }
        let n = keys.num_tokens();
        if n == 0 {
            return Err(CoreError::EmptyKeySet);
        }
        if values.num_rows() != n {
            return Err(CoreError::DimensionMismatch {
                expected: n,
                actual: values.num_rows(),
            });
        }
        if values.dim() != keys.dim() {
            return Err(CoreError::DimensionMismatch {
                expected: keys.dim(),
                actual: values.dim(),
            });
        }
        match self.cfg.mode {
            AccelMode::Baseline => Ok(self.run_baseline(query, keys, values, false)),
            AccelMode::EstimateOnly => Ok(self.run_baseline(query, keys, values, true)),
            AccelMode::OutOfOrder => Ok(self.run_chunked(query, keys, values, false)),
            AccelMode::Blocking => Ok(self.run_chunked(query, keys, values, true)),
        }
    }

    /// Chunked on-demand K pipeline (full ToPick, or the blocking ablation).
    fn run_chunked(
        &self,
        query: &QVector,
        keys: &QMatrix,
        values: Rows<'_>,
        blocking: bool,
    ) -> AttentionStepResult {
        let cfg = &self.cfg;
        let n = keys.num_tokens();
        let dim = keys.dim();
        let pc = cfg.precision;
        let num_chunks = pc.num_chunks();
        let burst_bytes = u64::from(cfg.dram.access_bytes);
        let chunk_bytes = (dim as u64 * u64::from(pc.chunk_bits())).div_ceil(8);
        let row_bytes = (dim as u64 * u64::from(pc.total_bits())).div_ceil(8);

        let mut st = RunState::new(cfg, n, dim);
        st.cycle = cfg.margin_gen_latency;
        let margins = MarginTable::from_query_codes(query.codes(), pc);
        let scale = topick_core::score_scale(query, keys);
        let ln_thr = cfg.threshold.ln();
        let mut denom = LogDenominator::new();
        let mut prev_smin = vec![f64::NAN; n];
        let lanes = cfg.lanes;

        // Per-lane first-chunk streams in scan order, and next-chunk queues.
        let mut lane_first: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
        for tok in cfg.order.indices(n) {
            lane_first[tok % lanes].push_back(tok);
        }
        // (token, chunk-to-fetch, next burst)
        let mut lane_next: Vec<VecDeque<(usize, u32, u64)>> = vec![VecDeque::new(); lanes];
        // Burst progress of the current first-chunk request per lane.
        let mut first_burst: Vec<u64> = vec![0; lanes];
        let mut sb_used = vec![0usize; lanes];
        // In blocking mode a lane may not start a new first chunk while it
        // still has an unresolved token in flight.
        let mut lane_inflight = vec![0usize; lanes];

        let mut stats = PruneStats::new(n, num_chunks);
        let mut kept: Vec<KeptToken> = Vec::new();
        let mut resolved = 0usize;
        let bursts_per_chunk = st.layout.k_bursts_per_chunk();
        let mut guard = 0u64;

        while resolved < n {
            guard += 1;
            assert!(
                guard < 100_000_000,
                "step 0 failed to converge: resolved {resolved}/{n}"
            );
            // (1) Issue at most one DRAM request per lane, next-chunk first.
            for lane in 0..lanes {
                let issued =
                    if let Some(&mut (tok, chunk, ref mut burst)) = lane_next[lane].front_mut() {
                        let addr = st.layout.k_addr(tok, chunk, *burst);
                        if st.dram.try_enqueue(k_req_id(tok, chunk, *burst), addr) {
                            *burst += 1;
                            if *burst == bursts_per_chunk {
                                lane_next[lane].pop_front();
                            }
                        }
                        true
                    } else {
                        false
                    };
                if issued {
                    continue;
                }
                let can_start_first = !blocking || lane_inflight[lane] == 0;
                if can_start_first {
                    if let Some(&tok) = lane_first[lane].front() {
                        let burst = first_burst[lane];
                        let addr = st.layout.k_addr(tok, 0, burst);
                        if st.dram.try_enqueue(k_req_id(tok, 0, burst), addr) {
                            if burst + 1 == bursts_per_chunk {
                                lane_first[lane].pop_front();
                                first_burst[lane] = 0;
                                lane_inflight[lane] += 1;
                            } else {
                                first_burst[lane] = burst + 1;
                            }
                        }
                    }
                }
            }

            // (2) DRAM progress.
            st.advance_cycle(lanes, burst_bytes);

            // (3) Compute: each lane evaluates at most one arrived chunk.
            for lane in 0..lanes {
                // A surviving first-chunk evaluation needs a scoreboard
                // entry. When the scoreboard is full, the RPDU services a
                // deeper-chunk refinement instead (it already owns an entry
                // and will free it) — otherwise a stalled first chunk at the
                // queue head would deadlock the lane.
                let sb_full = sb_used[lane] >= cfg.scoreboard_entries;
                let pick = {
                    let queue = &st.k_ready[lane];
                    if queue.is_empty() {
                        continue;
                    }
                    let front_needs_entry = {
                        let &(_, ck) = queue.front().expect("non-empty");
                        ck == 1 && ck < num_chunks && sb_full
                    };
                    if front_needs_entry {
                        match queue.iter().position(|&(_, ck)| ck > 1) {
                            Some(i) => i,
                            None => continue, // all arrivals need entries; wait
                        }
                    } else {
                        0
                    }
                };
                let (tok, chunks_known) = st.k_ready[lane].remove(pick).expect("index valid");
                stats.chunk_fetches[(chunks_known - 1) as usize] += 1;
                st.events.mac_12x4 += dim as u64;
                st.events.buffer_read_bytes += chunk_bytes;
                st.events.exp += 1; // PEC partial-exp
                st.events.scoreboard += if chunks_known > 1 { 2 } else { 1 };

                let ps = query.dot_known(keys.row(tok), chunks_known);
                let pair = margins.pair(chunks_known);
                let smin = (ps + pair.min) as f64 * scale;
                let smax = (ps + pair.max) as f64 * scale;
                if chunks_known == 1 {
                    denom.add(smin);
                } else {
                    denom.replace(prev_smin[tok], smin);
                }
                prev_smin[tok] = smin;

                let release_entry = |sb: &mut usize, ck: u32| {
                    if ck > 1 {
                        *sb -= 1;
                    }
                };
                if should_prune(smax, denom.ln(), ln_thr) {
                    stats.pruned_at[(chunks_known - 1) as usize] += 1;
                    resolved += 1;
                    lane_inflight[lane] -= 1;
                    release_entry(&mut sb_used[lane], chunks_known);
                } else if chunks_known == num_chunks {
                    kept.push(KeptToken {
                        index: tok,
                        score_int: ps,
                        score_real: smax,
                    });
                    resolved += 1;
                    lane_inflight[lane] -= 1;
                    release_entry(&mut sb_used[lane], chunks_known);
                } else {
                    if chunks_known == 1 {
                        sb_used[lane] += 1;
                    }
                    lane_next[lane].push_back((tok, chunks_known, 0));
                }
            }
        }

        kept.sort_by_key(|k| k.index);
        stats.kept = kept.len();
        self.finish_with_step1(st, stats, kept, values, dim, row_bytes, burst_bytes)
    }

    /// Full-precision K streaming pipeline: the no-pruning baseline, or the
    /// estimate-only variant that skips V rows of negligible tokens.
    fn run_baseline(
        &self,
        query: &QVector,
        keys: &QMatrix,
        values: Rows<'_>,
        estimate: bool,
    ) -> AttentionStepResult {
        let cfg = &self.cfg;
        let n = keys.num_tokens();
        let dim = keys.dim();
        let pc = cfg.precision;
        let burst_bytes = u64::from(cfg.dram.access_bytes);
        let row_bytes = (dim as u64 * u64::from(pc.total_bits())).div_ceil(8);

        // Full-precision K rows modeled as a single "chunk" of row width.
        let mut st = RunState::new(cfg, n, dim);
        {
            // Rebuild the layout with one full-width chunk.
            let burst = u64::from(cfg.dram.access_bytes);
            st.layout = KvLayout::new(n, row_bytes, row_bytes, 1, burst);
        }
        let scale = topick_core::score_scale(query, keys);
        let ln_thr = cfg.threshold.ln();
        let mut denom = LogDenominator::new();
        let lanes = cfg.lanes;

        let order: Vec<usize> = if estimate {
            cfg.order.sequence(n)
        } else {
            (0..n).collect()
        };
        let mut lane_first: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
        for tok in order {
            lane_first[tok % lanes].push_back(tok);
        }
        let mut first_burst = vec![0u64; lanes];
        let bursts_per_row = st.layout.k_bursts_per_chunk();

        let num_chunks = pc.num_chunks();
        let mut stats = PruneStats::new(n, num_chunks);
        // All chunks of all tokens are fetched in these modes.
        for c in &mut stats.chunk_fetches {
            *c = n as u64;
        }
        let mut kept: Vec<KeptToken> = Vec::new();
        let mut scored = 0usize;
        let mut guard = 0u64;

        while scored < n {
            guard += 1;
            assert!(guard < 100_000_000, "baseline K phase failed to converge");
            for lane in 0..lanes {
                if let Some(&tok) = lane_first[lane].front() {
                    let burst = first_burst[lane];
                    let addr = st.layout.k_addr(tok, 0, burst);
                    if st.dram.try_enqueue(k_req_id(tok, 0, burst), addr) {
                        if burst + 1 == bursts_per_row {
                            lane_first[lane].pop_front();
                            first_burst[lane] = 0;
                        } else {
                            first_burst[lane] = burst + 1;
                        }
                    }
                }
            }
            st.advance_cycle(lanes, burst_bytes);
            for lane in 0..lanes {
                let Some(&(tok, _)) = st.k_ready[lane].front() else {
                    continue;
                };
                st.k_ready[lane].pop_front();
                st.events.mac_12x12 += dim as u64;
                st.events.buffer_read_bytes += row_bytes;
                let ps = query.dot_codes(keys.row(tok));
                let s = ps as f64 * scale;
                scored += 1;
                if estimate {
                    st.events.exp += 1;
                    denom.add(s);
                    if should_prune(s, denom.ln(), ln_thr) {
                        stats.pruned_at[(num_chunks - 1) as usize] += 1;
                    } else {
                        kept.push(KeptToken {
                            index: tok,
                            score_int: ps,
                            score_real: s,
                        });
                    }
                } else {
                    kept.push(KeptToken {
                        index: tok,
                        score_int: ps,
                        score_real: s,
                    });
                }
            }
        }
        if !estimate {
            // Softmax over all scores: one EXP per token through the
            // lanes' 2 EXP units each.
            st.events.exp += n as u64;
            st.cycle += (n as u64).div_ceil(lanes as u64 * 2);
        }

        kept.sort_by_key(|k| k.index);
        stats.kept = kept.len();
        self.finish_with_step1(st, stats, kept, values, dim, row_bytes, burst_bytes)
    }

    /// Step 1: fetch V rows of kept tokens and accumulate the output.
    #[allow(clippy::too_many_arguments)]
    fn finish_with_step1(
        &self,
        mut st: RunState,
        stats: PruneStats,
        kept: Vec<KeptToken>,
        values: Rows<'_>,
        dim: usize,
        row_bytes: u64,
        burst_bytes: u64,
    ) -> AttentionStepResult {
        let cfg = &self.cfg;
        let lanes = cfg.lanes;
        let scores: Vec<f64> = kept.iter().map(|k| k.score_real).collect();
        let probs = softmax(&scores);
        // Probability Generator: one EXP per surviving token.
        st.events.exp += kept.len() as u64;

        let mut lane_v: Vec<VecDeque<usize>> = vec![VecDeque::new(); lanes];
        for k in &kept {
            lane_v[k.index % lanes].push_back(k.index);
        }
        let mut v_burst = vec![0u64; lanes];
        let bursts_per_row = st.layout.v_bursts_per_row();
        let mut maced = 0usize;
        let total = kept.len();
        let mut guard = 0u64;
        while maced < total {
            guard += 1;
            assert!(guard < 100_000_000, "step 1 failed to converge");
            for lane in 0..lanes {
                if let Some(&tok) = lane_v[lane].front() {
                    let burst = v_burst[lane];
                    let addr = st.layout.v_addr(tok, burst);
                    if st.dram.try_enqueue(v_req_id(tok, burst), addr) {
                        if burst + 1 == bursts_per_row {
                            lane_v[lane].pop_front();
                            v_burst[lane] = 0;
                        } else {
                            v_burst[lane] = burst + 1;
                        }
                    }
                }
            }
            st.advance_cycle(lanes, burst_bytes);
            for lane in 0..lanes {
                if st.v_ready[lane].pop_front().is_some() {
                    st.events.mac_12x12 += dim as u64;
                    st.events.buffer_read_bytes += row_bytes;
                    maced += 1;
                }
            }
        }

        let pairs: Vec<(usize, f64)> = kept
            .iter()
            .zip(&probs)
            .map(|(k, &p)| (k.index, p))
            .collect();
        let output = weighted_value_sum(&pairs, values);

        let energies = EventEnergies::node_65nm();
        let dram_cycles = st.dram.cycle();
        let dram_stats = st.dram.stats().clone();
        let energy = EnergyBreakdown {
            dram_pj: dram_stats.energy_pj(&cfg.dram, dram_cycles),
            buffer_pj: st.events.buffer_energy_pj(&energies),
            compute_pj: st.events.compute_energy_pj(&energies),
        };
        AttentionStepResult {
            cycles: st.cycle,
            output,
            kept: kept.iter().map(|k| k.index).collect(),
            prune: stats,
            events: st.events,
            dram_stats,
            dram_cycles,
            energy,
        }
    }
}
