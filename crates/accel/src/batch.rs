//! Batched-serving step simulation — the paper's motivation (§2.2.1)
//! turned into an end-to-end model.
//!
//! In a batched generation step, the FC/FFN weights are streamed from DRAM
//! once and shared by all `B` requests, while each request streams its own
//! KV cache through the attention unit. The attention share of the step
//! therefore grows with `B`, and that is precisely the share Token-Picker
//! shrinks. This module combines:
//!
//! * a measured per-request attention cost (cycles from the cycle-level
//!   simulator, amortized per head), and
//! * an analytic weight-streaming cost at the accelerator's DRAM bandwidth,
//!
//! to produce step latency and the batch-size scaling of the speedup.

use topick_core::{CoreError, PrecisionConfig, QMatrix, QVector, Rows};

use crate::config::AccelConfig;
use crate::engine::ToPickAccelerator;

/// Model-level parameters of the batched step (weight bytes come from the
/// model spec; attention geometry from the accelerator config).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStepParams {
    /// Bytes of FC/FFN weights streamed once per step.
    pub weight_bytes: u64,
    /// Attention heads per request (every head runs one attention step).
    pub heads: usize,
    /// Requests in the batch.
    pub batch: usize,
}

/// The outcome of a batched-step simulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BatchStepResult {
    /// Accelerator cycles spent streaming shared weights.
    pub weight_cycles: u64,
    /// Accelerator cycles spent on attention across the batch.
    pub attention_cycles: u64,
    /// Attention fraction of the step.
    pub attention_fraction: f64,
}

impl BatchStepResult {
    /// Total step cycles.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.weight_cycles + self.attention_cycles
    }

    /// Step speedup vs. another result (e.g. ToPick vs baseline).
    #[must_use]
    pub fn speedup_vs(&self, other: &BatchStepResult) -> f64 {
        other.total_cycles() as f64 / self.total_cycles() as f64
    }
}

/// Simulates one batched generation step.
///
/// The per-request, per-head attention cost is measured by running the
/// cycle-level simulator once on the supplied instance and scaling by
/// `heads × batch` (heads within a request are processed back-to-back on
/// the shared lanes, as are requests within the batch). Weight streaming
/// proceeds at the DRAM peak bandwidth, the best case for the baseline.
///
/// # Errors
///
/// Propagates [`CoreError`] from the attention simulation.
pub fn simulate_batch_step(
    accel_cfg: &AccelConfig,
    params: &BatchStepParams,
    query: &QVector,
    keys: &QMatrix,
    values: Rows<'_>,
) -> Result<BatchStepResult, CoreError> {
    let accel = ToPickAccelerator::new(accel_cfg.clone());
    let one_head = accel.run_attention(query, keys, values)?;
    let attention_cycles = one_head.cycles * params.heads as u64 * params.batch as u64;
    let weight_cycles = weight_stream_cycles(accel_cfg, params.weight_bytes);

    let total = weight_cycles + attention_cycles;
    Ok(BatchStepResult {
        weight_cycles,
        attention_cycles,
        attention_fraction: attention_cycles as f64 / total as f64,
    })
}

/// Accelerator cycles spent streaming `weight_bytes` of FC/FFN weights at
/// the DRAM peak bandwidth — the per-step cost every request in a batch
/// shares. Factored out so the serving engine prices steps with the same
/// model the batch simulation uses.
#[must_use]
pub fn weight_stream_cycles(accel_cfg: &AccelConfig, weight_bytes: u64) -> u64 {
    // Weights stream at peak DRAM bandwidth: bytes / (bytes-per-accel-cycle).
    let bytes_per_dram_cycle = f64::from(accel_cfg.dram.bus_bits) / 8.0
        * accel_cfg.dram.channels as f64
        / accel_cfg.dram.t_burst as f64
        * 2.0; // two transfer clocks per burst move access_bytes
    let bytes_per_accel_cycle = bytes_per_dram_cycle * accel_cfg.clock_ratio as f64;
    (weight_bytes as f64 / bytes_per_accel_cycle).ceil() as u64
}

/// Convenience: simulate the same batch step under two accelerator
/// configurations (typically baseline vs ToPick) and return
/// `(baseline, topick, speedup)`.
///
/// # Errors
///
/// Propagates [`CoreError`] from either simulation.
pub fn compare_batch_step(
    baseline_cfg: &AccelConfig,
    topick_cfg: &AccelConfig,
    params: &BatchStepParams,
    query: &QVector,
    keys: &QMatrix,
    values: Rows<'_>,
) -> Result<(BatchStepResult, BatchStepResult, f64), CoreError> {
    let base = simulate_batch_step(baseline_cfg, params, query, keys, values)?;
    let tp = simulate_batch_step(topick_cfg, params, query, keys, values)?;
    let speedup = tp.speedup_vs(&base);
    Ok((base, tp, speedup))
}

/// Sanity helper: the precision every batch simulation should use.
#[must_use]
pub fn default_precision() -> PrecisionConfig {
    PrecisionConfig::paper()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelMode;

    fn instance(ctx: usize) -> (QVector, QMatrix, Vec<f32>) {
        let pc = PrecisionConfig::paper();
        let inst = topick_model::SynthInstance::generate(
            &topick_model::SynthProfile::realistic(ctx, 64),
            7,
        );
        (
            QVector::quantize(&inst.query, pc),
            QMatrix::quantize_flat(inst.keys().data(), 64, pc).expect("non-empty"),
            inst.into_values(),
        )
    }

    #[test]
    fn attention_fraction_grows_with_batch() {
        let (q, keys, values) = instance(256);
        let cfg = AccelConfig::baseline();
        let mut prev_frac = 0.0;
        for batch in [1usize, 4, 16, 64] {
            let params = BatchStepParams {
                weight_bytes: 200_000_000, // ~0.1B params at 16-bit
                heads: 4,
                batch,
            };
            let r = simulate_batch_step(&cfg, &params, &q, &keys, Rows::new(&values, 64)).unwrap();
            assert!(
                r.attention_fraction > prev_frac,
                "batch {batch}: fraction {} not growing",
                r.attention_fraction
            );
            prev_frac = r.attention_fraction;
        }
    }

    #[test]
    fn topick_speedup_grows_with_batch() {
        let (q, keys, values) = instance(512);
        let base_cfg = AccelConfig::baseline();
        let tp_cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap();
        let mut prev_speedup = 0.0;
        for batch in [1usize, 8, 64] {
            // `heads` covers all layers x heads of a request (the attention
            // work one request contributes per step).
            let params = BatchStepParams {
                weight_bytes: 50_000_000,
                heads: 64,
                batch,
            };
            let (_, _, speedup) = compare_batch_step(
                &base_cfg,
                &tp_cfg,
                &params,
                &q,
                &keys,
                Rows::new(&values, 64),
            )
            .unwrap();
            assert!(
                speedup > prev_speedup,
                "batch {batch}: speedup {speedup} not growing (prev {prev_speedup})"
            );
            prev_speedup = speedup;
        }
        // At large batch the step is attention-dominated; speedup should be
        // a solid fraction of the pure-attention speedup (>1.5x).
        assert!(prev_speedup > 1.5, "large-batch speedup {prev_speedup}");
    }

    #[test]
    fn weight_streaming_cost_scales_with_bytes() {
        let (q, keys, values) = instance(128);
        let cfg = AccelConfig::baseline();
        let mk = |bytes| BatchStepParams {
            weight_bytes: bytes,
            heads: 2,
            batch: 1,
        };
        let vrows = Rows::new(&values, 64);
        let small = simulate_batch_step(&cfg, &mk(1_000_000), &q, &keys, vrows).unwrap();
        let large = simulate_batch_step(&cfg, &mk(10_000_000), &q, &keys, vrows).unwrap();
        assert!(large.weight_cycles > 9 * small.weight_cycles);
        assert_eq!(small.attention_cycles, large.attention_cycles);
    }
}
