//! Multi-request serving with continuous batching — the paper's batched
//! generation motivation (§2.2.1) turned into an executable engine.
//!
//! A [`ServingEngine`] owns a FIFO arrival queue and a running batch.
//! Every engine step models one batched decode iteration:
//!
//! 1. **Admission**: waiting requests join the batch while it has a free
//!    slot *and* the batch's total context stays within the configured
//!    token budget ([`AdmissionConfig`]) — the same guardrails a
//!    production scheduler uses to bound KV-cache memory.
//! 2. **Weight streaming**: the FC/FFN weights stream from DRAM once and
//!    are shared by every request in the batch
//!    ([`weight_stream_cycles`](crate::batch::weight_stream_cycles)).
//! 3. **Attention**: each request streams its own KV cache through the
//!    cycle-level simulator at its own context length — heterogeneous
//!    contexts batch together, exactly the regime where Token-Picker's
//!    pruning pays off hardest.
//! 4. **Retirement**: requests that reached their token target leave the
//!    batch, freeing budget for the queue at the *next* step — continuous
//!    batching rather than batch-synchronous scheduling.
//!
//! The per-request attention cost is measured (not modeled): one
//! cycle-level simulation per request per step on a synthetic instance of
//! the request's current context, scaled by the model's head count.

use std::collections::VecDeque;
use std::fmt;

use topick_core::{CoreError, PruneStats, QVector, QuantBuffer};
use topick_model::{SynthInstance, SynthProfile};

use crate::batch::weight_stream_cycles;
use crate::config::AccelConfig;
use crate::engine::ToPickAccelerator;

/// Errors of the serving layer.
#[derive(Debug, Clone, PartialEq)]
pub enum ServeError {
    /// A request had a zero prompt or zero token target.
    InvalidRequest(&'static str),
    /// Requests are queued but the admission limits can never admit the
    /// next one (e.g. `max_batch` is zero), so no progress is possible.
    AdmissionStalled {
        /// Requests stuck in the queue.
        pending: usize,
    },
    /// The workload did not finish within the step limit.
    StepLimitExceeded {
        /// The configured limit.
        max_steps: usize,
        /// Requests still unfinished when it was hit.
        unfinished: usize,
    },
    /// An attention simulation failed.
    Core(CoreError),
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::InvalidRequest(why) => write!(f, "invalid request: {why}"),
            Self::AdmissionStalled { pending } => write!(
                f,
                "admission stalled: {pending} queued request(s) can never be admitted \
                 under the configured batch limits"
            ),
            Self::StepLimitExceeded {
                max_steps,
                unfinished,
            } => write!(
                f,
                "workload incomplete after {max_steps} steps ({unfinished} requests left)"
            ),
            Self::Core(e) => write!(f, "attention simulation failed: {e}"),
        }
    }
}

impl std::error::Error for ServeError {}

impl From<CoreError> for ServeError {
    fn from(e: CoreError) -> Self {
        Self::Core(e)
    }
}

/// One generation request entering the engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServingRequest {
    /// Caller-chosen request id (also seeds the request's workload).
    pub id: u64,
    /// Context length at arrival (the already-processed prompt).
    pub prompt_len: usize,
    /// Tokens to generate before the request completes.
    pub max_new_tokens: usize,
}

/// Admission-control limits of the running batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionConfig {
    /// Maximum requests decoding concurrently.
    pub max_batch: usize,
    /// Maximum total context tokens across the batch (bounds KV-cache
    /// footprint; a request is admitted only if the budget still covers
    /// its *final* context, so it can never be evicted mid-flight).
    pub max_batch_tokens: usize,
}

impl Default for AdmissionConfig {
    fn default() -> Self {
        Self {
            max_batch: 16,
            max_batch_tokens: 16 * 2048,
        }
    }
}

/// Full configuration of the serving engine.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingConfig {
    /// Accelerator configuration each attention step runs under.
    pub accel: AccelConfig,
    /// Admission limits.
    pub admission: AdmissionConfig,
    /// FC/FFN weight bytes streamed once per decode step.
    pub weight_bytes: u64,
    /// Attention heads per request per step (layers × heads of the model;
    /// the per-head cost is measured once per request and scaled).
    pub heads: usize,
    /// Accelerator clock in Hz, for cycles → seconds conversion.
    pub clock_hz: f64,
    /// Base seed of the synthetic per-request workloads.
    pub seed: u64,
}

impl ServingConfig {
    /// A configuration around an accelerator config with paper-flavoured
    /// defaults: 50 MB of weights, 16 heads, 500 MHz core clock.
    #[must_use]
    pub fn new(accel: AccelConfig) -> Self {
        Self {
            accel,
            admission: AdmissionConfig::default(),
            weight_bytes: 50_000_000,
            heads: 16,
            clock_hz: 500e6,
            seed: 0,
        }
    }
}

/// Lifecycle record of one request, filled in as the engine runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RequestStats {
    /// The request's id.
    pub id: u64,
    /// Context length at arrival.
    pub prompt_len: usize,
    /// Tokens generated so far (equals the target once finished).
    pub generated: usize,
    /// Engine step at which the request was enqueued.
    pub enqueued_at: usize,
    /// Engine step at which it joined the running batch.
    pub admitted_at: Option<usize>,
    /// Engine step after which it completed.
    pub finished_at: Option<usize>,
    /// Attention cycles attributed to this request (per-head cost × heads).
    pub attention_cycles: u64,
}

/// What one engine step did.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StepReport {
    /// Step index (0-based).
    pub index: usize,
    /// Requests decoding in this step.
    pub batch: usize,
    /// Total context tokens attended over in this step — the step's
    /// attention work.
    pub context_tokens: usize,
    /// Cycles streaming the shared weights.
    pub weight_cycles: u64,
    /// Cycles of batched attention (requests share the lanes serially).
    pub attention_cycles: u64,
}

impl StepReport {
    /// Total cycles of the step.
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.weight_cycles + self.attention_cycles
    }
}

/// Aggregate outcome of a served workload.
#[derive(Debug, Clone, PartialEq)]
pub struct ServingReport {
    /// Per-step records, in order.
    pub steps: Vec<StepReport>,
    /// Per-request lifecycle records, in completion order.
    pub requests: Vec<RequestStats>,
    /// Total engine cycles across all steps.
    pub total_cycles: u64,
    /// Tokens generated across all requests.
    pub tokens_generated: usize,
    /// Aggregate pruning statistics over every simulated attention step.
    pub prune: PruneStats,
}

impl ServingReport {
    /// End-to-end throughput in generated tokens per second at `clock_hz`.
    #[must_use]
    pub fn tokens_per_second(&self, clock_hz: f64) -> f64 {
        if self.total_cycles == 0 {
            return 0.0;
        }
        self.tokens_generated as f64 / (self.total_cycles as f64 / clock_hz)
    }

    /// Mean decode-step latency in cycles.
    #[must_use]
    pub fn mean_step_cycles(&self) -> f64 {
        if self.steps.is_empty() {
            return 0.0;
        }
        self.total_cycles as f64 / self.steps.len() as f64
    }
}

/// One request's live state inside the engine.
#[derive(Debug, Clone)]
struct ActiveRequest {
    req: ServingRequest,
    context: usize,
    stats: RequestStats,
}

impl ActiveRequest {
    /// Context length when the request will retire (bounds its KV budget).
    fn final_context(&self) -> usize {
        self.req.prompt_len + self.req.max_new_tokens
    }
}

/// The continuous-batching serving engine.
///
/// # Examples
///
/// ```
/// use topick_accel::{AccelConfig, AccelMode, ServingConfig, ServingEngine, ServingRequest};
///
/// let accel = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
/// let mut cfg = ServingConfig::new(accel);
/// cfg.heads = 2;
/// let mut engine = ServingEngine::new(cfg);
/// for id in 0..3 {
///     engine.enqueue(ServingRequest { id, prompt_len: 24 + 8 * id as usize, max_new_tokens: 2 })?;
/// }
/// let report = engine.run_to_completion(64)?;
/// assert_eq!(report.tokens_generated, 6);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone)]
pub struct ServingEngine {
    cfg: ServingConfig,
    accel: ToPickAccelerator,
    pending: VecDeque<ActiveRequest>,
    running: Vec<ActiveRequest>,
    finished: Vec<RequestStats>,
    steps: Vec<StepReport>,
    prune: PruneStats,
    total_cycles: u64,
    tokens_generated: usize,
    step_index: usize,
    key_buf: QuantBuffer,
}

impl ServingEngine {
    /// Creates an idle engine.
    #[must_use]
    pub fn new(cfg: ServingConfig) -> Self {
        let chunks = cfg.accel.precision.num_chunks();
        let accel = ToPickAccelerator::new(cfg.accel.clone());
        Self {
            cfg,
            accel,
            pending: VecDeque::new(),
            running: Vec::new(),
            finished: Vec::new(),
            steps: Vec::new(),
            prune: PruneStats::new(0, chunks),
            total_cycles: 0,
            tokens_generated: 0,
            step_index: 0,
            key_buf: QuantBuffer::new(),
        }
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &ServingConfig {
        &self.cfg
    }

    /// Requests waiting for admission.
    #[must_use]
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Requests currently decoding.
    #[must_use]
    pub fn running(&self) -> usize {
        self.running.len()
    }

    /// Whether all enqueued work has completed.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        self.pending.is_empty() && self.running.is_empty()
    }

    /// Adds a request to the arrival queue.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::InvalidRequest`] if the prompt or token target
    /// is zero, or if the request alone could never satisfy the admission
    /// budget.
    pub fn enqueue(&mut self, req: ServingRequest) -> Result<(), ServeError> {
        if req.prompt_len == 0 {
            return Err(ServeError::InvalidRequest("prompt_len must be positive"));
        }
        if req.max_new_tokens == 0 {
            return Err(ServeError::InvalidRequest(
                "max_new_tokens must be positive",
            ));
        }
        let active = ActiveRequest {
            req,
            context: req.prompt_len,
            stats: RequestStats {
                id: req.id,
                prompt_len: req.prompt_len,
                generated: 0,
                enqueued_at: self.step_index,
                admitted_at: None,
                finished_at: None,
                attention_cycles: 0,
            },
        };
        if active.final_context() > self.cfg.admission.max_batch_tokens {
            return Err(ServeError::InvalidRequest(
                "request exceeds the batch token budget even alone",
            ));
        }
        self.pending.push_back(active);
        Ok(())
    }

    /// Context tokens the running batch is provisioned for (final contexts,
    /// the quantity admission guards).
    fn provisioned_tokens(&self) -> usize {
        self.running.iter().map(ActiveRequest::final_context).sum()
    }

    /// Admits queued requests while the batch has slots and token budget.
    fn admit(&mut self) {
        while self.running.len() < self.cfg.admission.max_batch {
            let Some(front) = self.pending.front() else {
                break;
            };
            if self.provisioned_tokens() + front.final_context()
                > self.cfg.admission.max_batch_tokens
            {
                break;
            }
            let mut active = self.pending.pop_front().expect("front exists");
            active.stats.admitted_at = Some(self.step_index);
            self.running.push(active);
        }
    }

    /// Runs one batched decode step.
    ///
    /// Returns `Ok(None)` when the engine is idle (nothing pending or
    /// running).
    ///
    /// # Errors
    ///
    /// Propagates simulation failures as [`ServeError::Core`].
    pub fn step(&mut self) -> Result<Option<StepReport>, ServeError> {
        self.admit();
        if self.running.is_empty() {
            if self.pending.is_empty() {
                return Ok(None);
            }
            // An empty batch that still cannot admit the queue head means
            // the limits exclude it permanently (per-request budget fits
            // were checked at enqueue, so only a zero/over-tight config
            // reaches this). Erroring beats silently dropping the work.
            return Err(ServeError::AdmissionStalled {
                pending: self.pending.len(),
            });
        }

        let weight_cycles = weight_stream_cycles(&self.cfg.accel, self.cfg.weight_bytes);
        let mut attention_cycles = 0u64;
        let mut context_tokens = 0usize;

        for slot in 0..self.running.len() {
            let (ctx, req_id) = {
                let r = &self.running[slot];
                (r.context, r.req.id)
            };
            context_tokens += ctx;
            let result = self.simulate_attention(req_id, ctx)?;
            let request_cycles = result.0 * self.cfg.heads as u64;
            self.prune.merge(&result.1);
            let r = &mut self.running[slot];
            r.stats.attention_cycles += request_cycles;
            r.stats.generated += 1;
            r.context += 1;
            attention_cycles += request_cycles;
        }

        let report = StepReport {
            index: self.step_index,
            batch: self.running.len(),
            context_tokens,
            weight_cycles,
            attention_cycles,
        };
        self.total_cycles += report.total_cycles();
        self.tokens_generated += report.batch;
        self.steps.push(report);
        self.step_index += 1;

        // Retire completed requests; freed budget admits queue at the next
        // step (continuous batching).
        let finished_now: Vec<ActiveRequest> = {
            let mut kept = Vec::with_capacity(self.running.len());
            let mut done = Vec::new();
            for r in self.running.drain(..) {
                if r.stats.generated >= r.req.max_new_tokens {
                    done.push(r);
                } else {
                    kept.push(r);
                }
            }
            self.running = kept;
            done
        };
        for mut r in finished_now {
            r.stats.finished_at = Some(report.index);
            self.finished.push(r.stats);
        }

        Ok(Some(report))
    }

    /// One cycle-level attention simulation of a request at context `ctx`,
    /// returning `(per-head cycles, pruning stats)`. The synthetic
    /// workload is deterministic in `(engine seed, request id, context)`.
    fn simulate_attention(
        &mut self,
        req_id: u64,
        ctx: usize,
    ) -> Result<(u64, PruneStats), ServeError> {
        let dim = self.cfg.accel.dim;
        let pc = self.cfg.accel.precision;
        let seed = self
            .cfg
            .seed
            .wrapping_add(req_id.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add((ctx as u64).wrapping_mul(0xC2B2_AE3D_27D4_EB4F));
        let inst = SynthInstance::generate(&SynthProfile::realistic(ctx, dim), seed);
        let q = QVector::quantize(&inst.query, pc);
        let keys = self
            .key_buf
            .quantize(inst.keys().data(), dim, pc)
            .map_err(ServeError::Core)?;
        let result = self.accel.run_attention(&q, &keys, inst.values());
        self.key_buf.reclaim(keys);
        let r = result?;
        Ok((r.cycles, r.prune))
    }

    /// Drives the engine until every request finishes, bounded by
    /// `max_steps`.
    ///
    /// # Errors
    ///
    /// Returns [`ServeError::StepLimitExceeded`] if work remains after
    /// `max_steps`, or propagates simulation failures.
    pub fn run_to_completion(&mut self, max_steps: usize) -> Result<ServingReport, ServeError> {
        for _ in 0..max_steps {
            if self.step()?.is_none() {
                return Ok(self.report());
            }
        }
        if self.is_idle() {
            return Ok(self.report());
        }
        Err(ServeError::StepLimitExceeded {
            max_steps,
            unfinished: self.pending.len() + self.running.len(),
        })
    }

    /// The report accumulated so far (complete once the engine is idle).
    #[must_use]
    pub fn report(&self) -> ServingReport {
        ServingReport {
            steps: self.steps.clone(),
            requests: self.finished.clone(),
            total_cycles: self.total_cycles,
            tokens_generated: self.tokens_generated,
            prune: self.prune.clone(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AccelMode;

    fn small_cfg(mode: AccelMode) -> ServingConfig {
        let mut cfg = ServingConfig::new(AccelConfig::paper(mode, 1e-3).expect("thr"));
        cfg.heads = 2;
        cfg.weight_bytes = 1_000_000;
        cfg
    }

    fn mixed_requests(n: u64) -> Vec<ServingRequest> {
        (0..n)
            .map(|id| ServingRequest {
                id,
                prompt_len: 16 + (id as usize % 5) * 12,
                max_new_tokens: 2 + (id as usize % 3),
            })
            .collect()
    }

    #[test]
    fn admission_respects_batch_slot_limit() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 2,
            max_batch_tokens: 100_000,
        };
        let mut engine = ServingEngine::new(cfg);
        for r in mixed_requests(5) {
            engine.enqueue(r).unwrap();
        }
        engine.step().unwrap().unwrap();
        assert!(engine.running() <= 2);
        assert_eq!(engine.running() + engine.pending(), 5);
    }

    #[test]
    fn admission_respects_token_budget() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 16,
            max_batch_tokens: 100, // fits ~2 small requests' final contexts
        };
        let mut engine = ServingEngine::new(cfg);
        for id in 0..4 {
            engine
                .enqueue(ServingRequest {
                    id,
                    prompt_len: 30,
                    max_new_tokens: 4,
                })
                .unwrap();
        }
        let s = engine.step().unwrap().unwrap();
        // final_context = 34 each; budget 100 admits at most 2.
        assert_eq!(s.batch, 2);
    }

    #[test]
    fn oversized_request_rejected_up_front() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission.max_batch_tokens = 64;
        let mut engine = ServingEngine::new(cfg);
        let err = engine
            .enqueue(ServingRequest {
                id: 0,
                prompt_len: 100,
                max_new_tokens: 10,
            })
            .unwrap_err();
        assert!(matches!(err, ServeError::InvalidRequest(_)));
    }

    #[test]
    fn zero_shapes_rejected() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        assert!(engine
            .enqueue(ServingRequest {
                id: 0,
                prompt_len: 0,
                max_new_tokens: 1
            })
            .is_err());
        assert!(engine
            .enqueue(ServingRequest {
                id: 0,
                prompt_len: 1,
                max_new_tokens: 0
            })
            .is_err());
    }

    #[test]
    fn continuous_batching_refills_from_queue() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission = AdmissionConfig {
            max_batch: 2,
            max_batch_tokens: 100_000,
        };
        let mut engine = ServingEngine::new(cfg);
        // Two short requests and one queued behind them.
        for (id, steps) in [(0u64, 1usize), (1, 1), (2, 2)] {
            engine
                .enqueue(ServingRequest {
                    id,
                    prompt_len: 16,
                    max_new_tokens: steps,
                })
                .unwrap();
        }
        engine.step().unwrap().unwrap(); // 0 and 1 run and finish
        assert_eq!(engine.pending(), 1);
        let s2 = engine.step().unwrap().unwrap(); // 2 admitted immediately
        assert_eq!(s2.batch, 1);
        let report = engine.run_to_completion(8).unwrap();
        assert_eq!(report.requests.len(), 3);
    }

    #[test]
    fn conservation_every_request_finishes_with_its_token_target() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        let reqs = mixed_requests(6);
        let expected_tokens: usize = reqs.iter().map(|r| r.max_new_tokens).sum();
        for r in &reqs {
            engine.enqueue(*r).unwrap();
        }
        let report = engine.run_to_completion(64).unwrap();
        assert_eq!(report.requests.len(), reqs.len());
        assert_eq!(report.tokens_generated, expected_tokens);
        let by_id: std::collections::HashMap<u64, &RequestStats> =
            report.requests.iter().map(|s| (s.id, s)).collect();
        for r in &reqs {
            let stats = by_id[&r.id];
            assert_eq!(stats.generated, r.max_new_tokens);
            assert!(stats.finished_at.is_some());
            assert!(stats.admitted_at.is_some());
            assert!(stats.attention_cycles > 0);
        }
        let step_total: u64 = report.steps.iter().map(StepReport::total_cycles).sum();
        assert_eq!(step_total, report.total_cycles);
    }

    #[test]
    fn stalled_admission_is_an_error_not_silent_completion() {
        let mut cfg = small_cfg(AccelMode::OutOfOrder);
        cfg.admission.max_batch = 0;
        let mut engine = ServingEngine::new(cfg);
        engine
            .enqueue(ServingRequest {
                id: 0,
                prompt_len: 16,
                max_new_tokens: 1,
            })
            .unwrap();
        let err = engine.run_to_completion(4).unwrap_err();
        assert!(matches!(err, ServeError::AdmissionStalled { pending: 1 }));
    }

    #[test]
    fn step_limit_is_enforced() {
        let mut engine = ServingEngine::new(small_cfg(AccelMode::OutOfOrder));
        engine
            .enqueue(ServingRequest {
                id: 0,
                prompt_len: 16,
                max_new_tokens: 50,
            })
            .unwrap();
        let err = engine.run_to_completion(3).unwrap_err();
        assert!(matches!(err, ServeError::StepLimitExceeded { .. }));
    }
}
