//! Accelerator configuration.

use topick_core::{PrecisionConfig, ScanOrder};
use topick_dram::DramConfig;

use std::fmt;
use std::str::FromStr;

/// Which pipeline the simulator models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccelMode {
    /// No pruning: stream all K, compute all scores, stream all V
    /// (the paper's baseline accelerator, §5.1.3).
    Baseline,
    /// Probability estimation for V only: all K is streamed at full
    /// precision, scores are exact, and V rows of negligible tokens are
    /// skipped (the "ToPick-V" intermediate configuration of Fig. 10).
    EstimateOnly,
    /// Full Token-Picker: chunked on-demand K with out-of-order score
    /// calculation plus V pruning.
    OutOfOrder,
    /// Ablation: chunked on-demand K but *blocking* — each lane waits for
    /// its token's next chunk instead of processing other arrivals.
    /// Same traffic as [`OutOfOrder`](Self::OutOfOrder), lower utilization.
    Blocking,
}

impl AccelMode {
    /// Stable, human-readable mode name — the token serve traces and CLI
    /// flags round-trip the mode through.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Self::Baseline => "baseline",
            Self::EstimateOnly => "estimate-only",
            Self::OutOfOrder => "out-of-order",
            Self::Blocking => "blocking",
        }
    }
}

impl fmt::Display for AccelMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for AccelMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "baseline" => Ok(Self::Baseline),
            "estimate" | "estimate-only" => Ok(Self::EstimateOnly),
            "ooo" | "out-of-order" => Ok(Self::OutOfOrder),
            "blocking" => Ok(Self::Blocking),
            other => Err(format!(
                "unknown accel mode '{other}' (expected baseline | estimate-only | out-of-order | blocking)"
            )),
        }
    }
}

/// Full configuration of the ToPick accelerator simulator.
///
/// # Examples
///
/// ```
/// use topick_accel::{AccelConfig, AccelMode};
///
/// let cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3)?;
/// assert_eq!(cfg.lanes, 16);
/// assert_eq!(cfg.clock_ratio, 4); // 2 GHz DRAM / 500 MHz core
/// # Ok::<(), topick_core::CoreError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct AccelConfig {
    /// Number of PE lanes (paper: 16).
    pub lanes: usize,
    /// Head dimension each lane's multiplier tree covers per cycle
    /// (paper: 64).
    pub dim: usize,
    /// Operand precision / chunking.
    pub precision: PrecisionConfig,
    /// Pruning probability threshold (ignored in `Baseline` mode).
    pub threshold: f64,
    /// Pipeline variant.
    pub mode: AccelMode,
    /// Token scan order for step 0.
    pub order: ScanOrder,
    /// DRAM device model.
    pub dram: DramConfig,
    /// DRAM clock cycles per accelerator clock cycle (2 GHz / 500 MHz = 4).
    pub clock_ratio: u64,
    /// Scoreboard entries per lane (paper: 32).
    pub scoreboard_entries: usize,
    /// Fixed pipeline latency of the Margin Generator before step 0 starts,
    /// in accelerator cycles.
    pub margin_gen_latency: u64,
}

impl AccelConfig {
    /// The paper's hardware configuration (Table 1) in the given mode with
    /// the given pruning threshold.
    ///
    /// # Errors
    ///
    /// Returns [`topick_core::CoreError::InvalidThreshold`] if `threshold`
    /// is not in `(0, 1)`.
    pub fn paper(mode: AccelMode, threshold: f64) -> Result<Self, topick_core::CoreError> {
        if !(threshold > 0.0 && threshold < 1.0) {
            return Err(topick_core::CoreError::InvalidThreshold(threshold));
        }
        Ok(Self {
            lanes: 16,
            dim: 64,
            precision: PrecisionConfig::paper(),
            threshold,
            mode,
            order: ScanOrder::FirstAndReverse,
            dram: DramConfig::hbm2(),
            clock_ratio: 4,
            scoreboard_entries: 32,
            margin_gen_latency: 4,
        })
    }

    /// The baseline accelerator (threshold is irrelevant but kept valid).
    #[must_use]
    pub fn baseline() -> Self {
        Self::paper(AccelMode::Baseline, 0.5).expect("0.5 is a valid threshold")
    }

    /// Bytes of one K chunk of one token.
    #[must_use]
    pub fn k_chunk_bytes(&self) -> u64 {
        (self.dim as u64 * u64::from(self.precision.chunk_bits())).div_ceil(8)
    }

    /// Bytes of one full-precision K or V row.
    #[must_use]
    pub fn kv_row_bytes(&self) -> u64 {
        (self.dim as u64 * u64::from(self.precision.total_bits())).div_ceil(8)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes() {
        let cfg = AccelConfig::paper(AccelMode::OutOfOrder, 1e-3).unwrap();
        assert_eq!(cfg.k_chunk_bytes(), 32); // 64 dims x 4 bits
        assert_eq!(cfg.kv_row_bytes(), 96); // 64 dims x 12 bits
        assert_eq!(cfg.scoreboard_entries, 32);
    }

    #[test]
    fn invalid_threshold_rejected() {
        assert!(AccelConfig::paper(AccelMode::OutOfOrder, 0.0).is_err());
        assert!(AccelConfig::paper(AccelMode::OutOfOrder, 1.0).is_err());
    }

    #[test]
    fn accel_mode_round_trips_through_names() {
        for mode in [
            AccelMode::Baseline,
            AccelMode::EstimateOnly,
            AccelMode::OutOfOrder,
            AccelMode::Blocking,
        ] {
            assert_eq!(mode.name().parse::<AccelMode>().unwrap(), mode);
            assert_eq!(mode.to_string(), mode.name());
        }
        assert!("nope".parse::<AccelMode>().is_err());
        assert_eq!("ooo".parse::<AccelMode>(), Ok(AccelMode::OutOfOrder));
    }
}
