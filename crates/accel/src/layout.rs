//! DRAM layout of the KV cache, chunk-major for K so that a pruning pass
//! over chunk `b` streams sequentially.

/// Address generator for one head's K (bit-chunked) and V (full-precision)
/// data in DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvLayout {
    n_tokens: usize,
    k_chunk_bytes: u64,
    v_row_bytes: u64,
    num_chunks: u32,
    burst_bytes: u64,
    k_base: u64,
    v_base: u64,
}

impl KvLayout {
    /// Builds the layout. K chunks are stored chunk-major
    /// (`[chunk0 of all tokens][chunk1 of all tokens]…`), V rows
    /// token-major, V after K.
    ///
    /// # Panics
    ///
    /// Panics if any size is zero.
    #[must_use]
    pub fn new(
        n_tokens: usize,
        k_chunk_bytes: u64,
        v_row_bytes: u64,
        num_chunks: u32,
        burst_bytes: u64,
    ) -> Self {
        assert!(n_tokens > 0 && k_chunk_bytes > 0 && v_row_bytes > 0 && num_chunks > 0);
        assert!(burst_bytes > 0);
        let k_chunk_padded = k_chunk_bytes.div_ceil(burst_bytes) * burst_bytes;
        let v_row_padded = v_row_bytes.div_ceil(burst_bytes) * burst_bytes;
        let k_total = k_chunk_padded * n_tokens as u64 * u64::from(num_chunks);
        Self {
            n_tokens,
            k_chunk_bytes: k_chunk_padded,
            v_row_bytes: v_row_padded,
            num_chunks,
            burst_bytes,
            k_base: 0,
            v_base: k_total,
        }
    }

    /// DRAM bursts needed for one K chunk of one token.
    #[must_use]
    pub fn k_bursts_per_chunk(&self) -> u64 {
        self.k_chunk_bytes / self.burst_bytes
    }

    /// DRAM bursts needed for one V row.
    #[must_use]
    pub fn v_bursts_per_row(&self) -> u64 {
        self.v_row_bytes / self.burst_bytes
    }

    /// Address of burst `burst` of chunk `chunk` of token `token`'s key.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn k_addr(&self, token: usize, chunk: u32, burst: u64) -> u64 {
        assert!(token < self.n_tokens, "token out of range");
        assert!(chunk < self.num_chunks, "chunk out of range");
        assert!(burst < self.k_bursts_per_chunk(), "burst out of range");
        self.k_base
            + (u64::from(chunk) * self.n_tokens as u64 + token as u64) * self.k_chunk_bytes
            + burst * self.burst_bytes
    }

    /// Address of burst `burst` of token `token`'s value row.
    ///
    /// # Panics
    ///
    /// Panics if any index is out of range.
    #[must_use]
    pub fn v_addr(&self, token: usize, burst: u64) -> u64 {
        assert!(token < self.n_tokens, "token out of range");
        assert!(burst < self.v_bursts_per_row(), "burst out of range");
        self.v_base + token as u64 * self.v_row_bytes + burst * self.burst_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_major_is_sequential_within_a_chunk() {
        let l = KvLayout::new(100, 32, 96, 3, 32);
        assert_eq!(l.k_addr(0, 0, 0), 0);
        assert_eq!(l.k_addr(1, 0, 0), 32);
        assert_eq!(l.k_addr(0, 1, 0), 3200);
        assert_eq!(l.k_bursts_per_chunk(), 1);
        assert_eq!(l.v_bursts_per_row(), 3);
    }

    #[test]
    fn v_region_does_not_overlap_k() {
        let l = KvLayout::new(10, 32, 96, 3, 32);
        let k_max = l.k_addr(9, 2, 0) + 32;
        assert!(l.v_addr(0, 0) >= k_max);
        assert_eq!(l.v_addr(1, 0) - l.v_addr(0, 0), 96);
    }

    #[test]
    fn padding_rounds_to_bursts() {
        // 128-dim head: chunk = 64B (2 bursts), row = 192B (6 bursts).
        let l = KvLayout::new(4, 64, 192, 3, 32);
        assert_eq!(l.k_bursts_per_chunk(), 2);
        assert_eq!(l.v_bursts_per_row(), 6);
        assert_eq!(l.k_addr(0, 0, 1) - l.k_addr(0, 0, 0), 32);
    }
}
