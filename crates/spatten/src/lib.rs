//! # topick-spatten
//!
//! A reimplementation of SpAtten's cascade token pruning (Wang et al.,
//! HPCA 2021) — the fixed-ratio baseline Token-Picker is compared against
//! in Fig. 9.
//!
//! Two views of the same mechanism are provided:
//!
//! * [`simulate_generation`] — a generation-phase access simulator with
//!   cumulative-importance ranking and a cascaded per-layer keep-ratio
//!   schedule, used for bit-level K/V traffic comparison.
//! * [`TopKAttention`] — a fixed-ratio top-k attention kernel implementing
//!   [`topick_model::AttentionBackend`], used for ΔPPL calibration on the
//!   same footing as Token-Picker's kernel.
//!
//! ## Example
//!
//! ```
//! use topick_spatten::{simulate_generation, SpattenConfig};
//!
//! let cfg = SpattenConfig::new(0.4, 3);
//! let access = simulate_generation(&cfg, 64, 8, 4, 2, 16, |_, _, _, toks| {
//!     toks.iter().map(|&t| (t as f64).sin()).collect()
//! });
//! assert!(access.normalized() < 1.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod cascade;
pub mod heads;
pub mod kernel;

pub use cascade::{simulate_generation, CascadeState, SpattenAccess, SpattenConfig};
pub use heads::{HeadPruneConfig, HeadPruner};
pub use kernel::TopKAttention;
