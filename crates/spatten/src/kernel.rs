//! A fixed-ratio top-k attention kernel — SpAtten's per-instance behaviour
//! packaged as a [`topick_model::AttentionBackend`] so the same ΔPPL
//! calibration harness can drive both designs.

use topick_core::{softmax, PrecisionConfig, PruneStats};
use topick_model::{AttentionBackend, KvView};

/// Attention that keeps only the top `keep_ratio` fraction of tokens by
/// probability, renormalizing over the survivors.
///
/// Unlike Token-Picker's adaptive thresholding, the kept count is a fixed
/// fraction of the context regardless of how the probability mass is
/// actually distributed — the failure mode Fig. 3 illustrates.
///
/// # Examples
///
/// ```
/// use topick_model::{AttentionBackend, HeadCache};
/// use topick_spatten::TopKAttention;
///
/// let mut cache = HeadCache::new(2);
/// for i in 0..10 {
///     cache.push(&[i as f32, 1.0], &[1.0, 0.0]);
/// }
/// let mut kernel = TopKAttention::new(0.3);
/// let out = kernel.attend(&[1.0, 0.0], cache.view());
/// assert_eq!(out.len(), 2);
/// let stats = kernel.accumulated_stats().expect("tracked");
/// assert_eq!(stats.kept, 3); // ceil(0.3 * 10)
/// ```
#[derive(Debug, Clone)]
pub struct TopKAttention {
    keep_ratio: f64,
    stats: PruneStats,
}

impl TopKAttention {
    /// Creates a kernel keeping `keep_ratio` of tokens per call.
    ///
    /// # Panics
    ///
    /// Panics if `keep_ratio` is outside `(0, 1]`.
    #[must_use]
    pub fn new(keep_ratio: f64) -> Self {
        assert!(
            keep_ratio > 0.0 && keep_ratio <= 1.0,
            "keep ratio must be in (0, 1]"
        );
        Self {
            keep_ratio,
            stats: PruneStats::new(0, PrecisionConfig::paper().num_chunks()),
        }
    }

    /// The configured keep ratio.
    #[must_use]
    pub fn keep_ratio(&self) -> f64 {
        self.keep_ratio
    }
}

impl AttentionBackend for TopKAttention {
    fn attend(&mut self, q: &[f32], kv: KvView<'_>) -> Vec<f32> {
        let n = kv.len();
        assert!(n > 0, "attention over empty cache");
        let scale = 1.0 / (kv.dim() as f32).sqrt();
        let scores: Vec<f64> = kv
            .keys()
            .iter()
            .map(|k| f64::from(q.iter().zip(k).map(|(&a, &b)| a * b).sum::<f32>() * scale))
            .collect();
        let probs = softmax(&scores);
        let keep = ((n as f64) * self.keep_ratio).ceil() as usize;
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by(|&a, &b| {
            probs[b]
                .partial_cmp(&probs[a])
                .expect("finite probabilities")
                .then(a.cmp(&b))
        });
        let kept = &order[..keep.min(n)];
        let kept_scores: Vec<f64> = kept.iter().map(|&i| scores[i]).collect();
        let renorm = softmax(&kept_scores);

        // Accounting: SpAtten loads every key (scores need all of them)
        // but only the survivors' values.
        let mut stats = PruneStats::new(n, PrecisionConfig::paper().num_chunks());
        for c in &mut stats.chunk_fetches {
            *c = n as u64;
        }
        stats.kept = kept.len();
        *stats.pruned_at.last_mut().expect("chunks") = (n - kept.len()) as u64;
        self.stats.merge(&stats);

        let dim = kv.dim();
        let mut out = vec![0.0f32; dim];
        for (&tok, &p) in kept.iter().zip(&renorm) {
            let v = kv.values().row(tok);
            for (o, &vv) in out.iter_mut().zip(v) {
                *o += p as f32 * vv;
            }
        }
        out
    }

    fn accumulated_stats(&self) -> Option<&PruneStats> {
        Some(&self.stats)
    }

    fn reset_stats(&mut self) {
        self.stats = PruneStats::new(0, PrecisionConfig::paper().num_chunks());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use topick_model::HeadCache;

    fn cache_with_scores(n: usize) -> HeadCache {
        let mut cache = HeadCache::new(2);
        for i in 0..n {
            // Key [i, 0] with query [1, 0] gives score i.
            cache.push(&[i as f32, 0.0], &[i as f32, 1.0]);
        }
        cache
    }

    #[test]
    fn keeps_exactly_the_ratio() {
        let cache = cache_with_scores(20);
        let mut kernel = TopKAttention::new(0.25);
        let _ = kernel.attend(&[1.0, 0.0], cache.view());
        assert_eq!(kernel.accumulated_stats().unwrap().kept, 5);
    }

    #[test]
    fn keeps_the_dominant_tokens() {
        let cache = cache_with_scores(10);
        let mut kernel = TopKAttention::new(0.2);
        let out = kernel.attend(&[1.0, 0.0], cache.view());
        // Tokens 8 and 9 dominate; output ~ weighted toward v = [9, 1].
        assert!(out[0] > 8.0, "output {out:?}");
    }

    #[test]
    fn ratio_one_equals_exact_attention() {
        let cache = cache_with_scores(12);
        let q = [1.0f32, 0.0];
        let mut topk = TopKAttention::new(1.0);
        let mut exact = topick_model::ExactAttention::new();
        let a = topk.attend(&q, cache.view());
        let b = exact.attend(&q, cache.view());
        for (x, y) in a.iter().zip(&b) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn full_k_traffic_is_counted() {
        let cache = cache_with_scores(16);
        let mut kernel = TopKAttention::new(0.5);
        let _ = kernel.attend(&[1.0, 0.0], cache.view());
        let stats = kernel.accumulated_stats().unwrap();
        let pc = PrecisionConfig::paper();
        assert_eq!(stats.k_reduction(2, &pc), 1.0, "SpAtten reads all K");
        assert!(stats.v_reduction() >= 2.0);
    }
}
