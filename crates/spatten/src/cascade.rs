//! SpAtten-style cascade token pruning (Wang et al., HPCA 2021), used as
//! the fixed-ratio baseline of the paper's Fig. 9.
//!
//! SpAtten ranks tokens by their *cumulative* attention probability
//! (accumulated across heads and layers) and keeps only the top fraction;
//! once a token is pruned at layer `l` it is excluded from all deeper layers
//! and all later generation steps (the "cascade"). This reduces both K and V
//! traffic, but by a *fixed ratio* that ignores how many tokens actually
//! matter in a given instance — the contrast Token-Picker draws in §2.2.2.

use topick_core::softmax;

/// Cascade pruning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpattenConfig {
    /// Fraction of tokens retained once the cascade has fully ramped.
    pub final_keep_ratio: f64,
    /// Number of leading layers over which the keep ratio ramps linearly
    /// from 1.0 down to `final_keep_ratio`.
    pub ramp_layers: usize,
}

impl SpattenConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `final_keep_ratio` is outside `(0, 1]`.
    #[must_use]
    pub fn new(final_keep_ratio: f64, ramp_layers: usize) -> Self {
        assert!(
            final_keep_ratio > 0.0 && final_keep_ratio <= 1.0,
            "keep ratio must be in (0, 1]"
        );
        Self {
            final_keep_ratio,
            ramp_layers,
        }
    }

    /// The keep ratio in effect at `layer`.
    #[must_use]
    pub fn keep_ratio_at(&self, layer: usize) -> f64 {
        if self.ramp_layers == 0 {
            return self.final_keep_ratio;
        }
        let t = (layer as f64 / self.ramp_layers as f64).min(1.0);
        1.0 - (1.0 - self.final_keep_ratio) * t
    }
}

/// The cascade pruning state over one generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct CascadeState {
    cumulative: Vec<f64>,
    active: Vec<bool>,
}

impl CascadeState {
    /// State for an initial context of `n` tokens, all active.
    #[must_use]
    pub fn new(n: usize) -> Self {
        Self {
            cumulative: vec![0.0; n],
            active: vec![true; n],
        }
    }

    /// Registers one newly generated token (always active).
    pub fn extend(&mut self) {
        self.cumulative.push(0.0);
        self.active.push(true);
    }

    /// Number of tokens tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.active.len()
    }

    /// Whether no tokens are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.active.is_empty()
    }

    /// Indices of currently active tokens.
    #[must_use]
    pub fn active_tokens(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&i| self.active[i]).collect()
    }

    /// Number of currently active tokens.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Accumulates one head's attention probabilities (aligned with
    /// [`active_tokens`](Self::active_tokens)) into the importance scores.
    ///
    /// # Panics
    ///
    /// Panics if `probs.len()` differs from the active count.
    pub fn accumulate(&mut self, probs: &[f64]) {
        let active = self.active_tokens();
        assert_eq!(probs.len(), active.len(), "prob/active length mismatch");
        for (&tok, &p) in active.iter().zip(probs) {
            self.cumulative[tok] += p;
        }
    }

    /// Prunes the active set down to `keep` tokens by cumulative importance
    /// (stable: ties keep the older token). No-op if already at or below.
    pub fn prune_to(&mut self, keep: usize) {
        let mut active = self.active_tokens();
        if active.len() <= keep {
            return;
        }
        active.sort_by(|&a, &b| {
            self.cumulative[b]
                .partial_cmp(&self.cumulative[a])
                .expect("finite importance")
                .then(a.cmp(&b))
        });
        for &tok in &active[keep..] {
            self.active[tok] = false;
        }
    }
}

/// Bit-level access accounting of a cascade run vs. the no-pruning baseline.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SpattenAccess {
    /// Key bits fetched.
    pub k_bits: u64,
    /// Value bits fetched.
    pub v_bits: u64,
    /// Key bits a no-pruning baseline would fetch.
    pub baseline_k_bits: u64,
    /// Value bits the baseline would fetch.
    pub baseline_v_bits: u64,
}

impl SpattenAccess {
    /// Total access reduction factor.
    #[must_use]
    pub fn total_reduction(&self) -> f64 {
        let fetched = self.k_bits + self.v_bits;
        if fetched == 0 {
            return f64::INFINITY;
        }
        (self.baseline_k_bits + self.baseline_v_bits) as f64 / fetched as f64
    }

    /// Normalized access (fetched / baseline), the Fig. 9 y-axis.
    #[must_use]
    pub fn normalized(&self) -> f64 {
        (self.k_bits + self.v_bits) as f64 / (self.baseline_k_bits + self.baseline_v_bits) as f64
    }
}

/// Simulates cascade pruning over a generation run driven by externally
/// supplied attention scores.
///
/// `scores(step, layer, head, tokens)` must return raw correlation scores
/// for exactly the requested (active) token indices; the simulator
/// softmaxes them, accumulates importance, applies the per-layer keep
/// ratio, and counts K/V bits (12-bit operands, like the paper's setup).
///
/// # Panics
///
/// Panics if the score callback returns the wrong number of scores.
pub fn simulate_generation<F>(
    cfg: &SpattenConfig,
    prompt_len: usize,
    gen_steps: usize,
    layers: usize,
    heads: usize,
    dim: usize,
    mut scores: F,
) -> SpattenAccess
where
    F: FnMut(usize, usize, usize, &[usize]) -> Vec<f64>,
{
    const BITS: u64 = 12;
    let mut state = CascadeState::new(prompt_len);
    let mut access = SpattenAccess::default();
    let per_tok_bits = dim as u64 * BITS;
    for step in 0..gen_steps {
        let context = state.len();
        for layer in 0..layers {
            let active = state.active_tokens();
            // K of every active token is fetched once per layer (shared by
            // heads within the layer, as SpAtten's importance ranking is).
            access.k_bits += active.len() as u64 * per_tok_bits;
            access.baseline_k_bits += context as u64 * per_tok_bits;
            for head in 0..heads {
                let s = scores(step, layer, head, &active);
                assert_eq!(s.len(), active.len(), "score callback length mismatch");
                let probs = softmax(&s);
                state.accumulate(&probs);
            }
            // V fetched for the tokens surviving this layer's keep ratio.
            let keep = ((state.len() as f64) * cfg.keep_ratio_at(layer)).ceil() as usize;
            state.prune_to(keep.max(1));
            access.v_bits += state.active_count() as u64 * per_tok_bits;
            access.baseline_v_bits += context as u64 * per_tok_bits;
        }
        let _ = step;
        state.extend();
    }
    access
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flat_scores(_s: usize, _l: usize, _h: usize, toks: &[usize]) -> Vec<f64> {
        toks.iter().map(|&t| (t % 7) as f64 * 0.3).collect()
    }

    #[test]
    fn keep_ratio_ramps() {
        let cfg = SpattenConfig::new(0.4, 4);
        assert!((cfg.keep_ratio_at(0) - 1.0).abs() < 1e-12);
        assert!((cfg.keep_ratio_at(2) - 0.7).abs() < 1e-12);
        assert!((cfg.keep_ratio_at(4) - 0.4).abs() < 1e-12);
        assert!((cfg.keep_ratio_at(10) - 0.4).abs() < 1e-12);
    }

    #[test]
    fn prune_keeps_highest_importance() {
        let mut st = CascadeState::new(4);
        st.accumulate(&[0.1, 0.6, 0.05, 0.25]);
        st.prune_to(2);
        assert_eq!(st.active_tokens(), vec![1, 3]);
    }

    #[test]
    fn cascade_is_monotone() {
        // Once pruned, a token never comes back.
        let cfg = SpattenConfig::new(0.5, 2);
        let mut seen_inactive: std::collections::HashSet<usize> = std::collections::HashSet::new();
        let mut state = CascadeState::new(8);
        for layer in 0..6 {
            let active = state.active_tokens();
            for &t in &seen_inactive {
                assert!(!active.contains(&t), "token resurrected");
            }
            let probs = vec![1.0 / active.len() as f64; active.len()];
            state.accumulate(&probs);
            let keep = ((state.len() as f64) * cfg.keep_ratio_at(layer)).ceil() as usize;
            state.prune_to(keep.max(1));
            for i in 0..state.len() {
                if !state.active_tokens().contains(&i) {
                    seen_inactive.insert(i);
                }
            }
        }
    }

    #[test]
    fn simulation_reduces_access() {
        let cfg = SpattenConfig::new(0.3, 2);
        let acc = simulate_generation(&cfg, 64, 8, 4, 2, 16, flat_scores);
        assert!(acc.k_bits < acc.baseline_k_bits);
        assert!(acc.v_bits < acc.baseline_v_bits);
        assert!(acc.total_reduction() > 1.0);
        assert!(acc.normalized() < 1.0);
    }

    #[test]
    fn keep_ratio_one_means_no_pruning() {
        let cfg = SpattenConfig::new(1.0, 0);
        let acc = simulate_generation(&cfg, 32, 4, 3, 2, 8, flat_scores);
        assert_eq!(acc.k_bits, acc.baseline_k_bits);
        assert_eq!(acc.v_bits, acc.baseline_v_bits);
    }

    #[test]
    fn lower_ratio_prunes_more() {
        let a = simulate_generation(&SpattenConfig::new(0.6, 2), 64, 8, 4, 2, 16, flat_scores);
        let b = simulate_generation(&SpattenConfig::new(0.2, 2), 64, 8, 4, 2, 16, flat_scores);
        assert!(b.normalized() < a.normalized());
    }

    #[test]
    #[should_panic(expected = "keep ratio must be in (0, 1]")]
    fn zero_ratio_rejected() {
        let _ = SpattenConfig::new(0.0, 1);
    }
}
