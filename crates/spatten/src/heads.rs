//! SpAtten's cascade *head* pruning — the second half of the HPCA'21
//! technique (the paper's §2.2.2 cites "cascade token/head pruning").
//!
//! Heads are ranked by cumulative head importance — the magnitude of their
//! attention outputs accumulated across tokens — and the least important
//! heads are dropped permanently once enough evidence accumulates. A
//! pruned head skips its Q/K/V projections and its whole KV traffic.

/// Head-pruning configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadPruneConfig {
    /// Fraction of heads retained once fully ramped.
    pub final_keep_ratio: f64,
    /// Number of generation steps over which the ratio ramps from 1.0.
    pub ramp_steps: usize,
}

impl HeadPruneConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics if `final_keep_ratio` is outside `(0, 1]`.
    #[must_use]
    pub fn new(final_keep_ratio: f64, ramp_steps: usize) -> Self {
        assert!(
            final_keep_ratio > 0.0 && final_keep_ratio <= 1.0,
            "keep ratio must be in (0, 1]"
        );
        Self {
            final_keep_ratio,
            ramp_steps,
        }
    }

    /// Keep ratio in effect at generation step `step`.
    #[must_use]
    pub fn keep_ratio_at(&self, step: usize) -> f64 {
        if self.ramp_steps == 0 {
            return self.final_keep_ratio;
        }
        let t = (step as f64 / self.ramp_steps as f64).min(1.0);
        1.0 - (1.0 - self.final_keep_ratio) * t
    }
}

/// Cascade head-pruning state across a generation run.
#[derive(Debug, Clone, PartialEq)]
pub struct HeadPruner {
    cfg: HeadPruneConfig,
    importance: Vec<f64>,
    active: Vec<bool>,
}

impl HeadPruner {
    /// State for `n_heads` heads, all active.
    #[must_use]
    pub fn new(cfg: HeadPruneConfig, n_heads: usize) -> Self {
        Self {
            cfg,
            importance: vec![0.0; n_heads],
            active: vec![true; n_heads],
        }
    }

    /// Indices of currently active heads.
    #[must_use]
    pub fn active_heads(&self) -> Vec<usize> {
        (0..self.active.len()).filter(|&h| self.active[h]).collect()
    }

    /// Number of active heads.
    #[must_use]
    pub fn active_count(&self) -> usize {
        self.active.iter().filter(|&&a| a).count()
    }

    /// Accumulates one step's head importances (e.g. attention-output L1
    /// norms), aligned with [`active_heads`](Self::active_heads), then
    /// applies the step's keep ratio.
    ///
    /// # Panics
    ///
    /// Panics if `importances.len()` differs from the active-head count.
    pub fn observe_step(&mut self, step: usize, importances: &[f64]) {
        let active = self.active_heads();
        assert_eq!(
            importances.len(),
            active.len(),
            "importance/active length mismatch"
        );
        for (&h, &imp) in active.iter().zip(importances) {
            self.importance[h] += imp;
        }
        let keep = ((self.active.len() as f64) * self.cfg.keep_ratio_at(step)).ceil() as usize;
        self.prune_to(keep.max(1));
    }

    fn prune_to(&mut self, keep: usize) {
        let mut active = self.active_heads();
        if active.len() <= keep {
            return;
        }
        active.sort_by(|&a, &b| {
            self.importance[b]
                .partial_cmp(&self.importance[a])
                .expect("finite importance")
                .then(a.cmp(&b))
        });
        for &h in &active[keep..] {
            self.active[h] = false;
        }
    }

    /// Fraction of per-step attention KV traffic avoided so far at `step`
    /// (pruned heads fetch nothing).
    #[must_use]
    pub fn traffic_fraction(&self) -> f64 {
        self.active_count() as f64 / self.active.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn heads_prune_to_ratio_after_ramp() {
        let cfg = HeadPruneConfig::new(0.5, 4);
        let mut hp = HeadPruner::new(cfg, 8);
        for step in 0..8 {
            let n = hp.active_count();
            let imp: Vec<f64> = (0..n).map(|i| i as f64).collect();
            hp.observe_step(step, &imp);
        }
        assert_eq!(hp.active_count(), 4);
    }

    #[test]
    fn important_heads_survive() {
        let cfg = HeadPruneConfig::new(0.25, 0);
        let mut hp = HeadPruner::new(cfg, 8);
        // Head 7 most important, head 0 least.
        let imp: Vec<f64> = (0..8).map(|i| i as f64).collect();
        hp.observe_step(0, &imp);
        let active = hp.active_heads();
        assert_eq!(active, vec![6, 7]);
    }

    #[test]
    fn pruned_heads_never_return() {
        let cfg = HeadPruneConfig::new(0.5, 2);
        let mut hp = HeadPruner::new(cfg, 6);
        let mut ever_inactive = std::collections::HashSet::new();
        for step in 0..6 {
            let n = hp.active_count();
            hp.observe_step(step, &vec![1.0; n]);
            for h in 0..6 {
                if !hp.active_heads().contains(&h) {
                    ever_inactive.insert(h);
                }
            }
            for &h in &ever_inactive {
                assert!(!hp.active_heads().contains(&h), "head {h} resurrected");
            }
        }
    }

    #[test]
    fn traffic_fraction_tracks_active_count() {
        let cfg = HeadPruneConfig::new(0.5, 0);
        let mut hp = HeadPruner::new(cfg, 4);
        assert!((hp.traffic_fraction() - 1.0).abs() < 1e-12);
        hp.observe_step(0, &[1.0, 2.0, 3.0, 4.0]);
        assert!((hp.traffic_fraction() - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "keep ratio must be in (0, 1]")]
    fn invalid_ratio_rejected() {
        let _ = HeadPruneConfig::new(1.5, 0);
    }
}
