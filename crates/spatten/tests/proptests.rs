//! Property tests of the SpAtten baselines: cascade invariants and kernel
//! accounting.

use proptest::prelude::*;
use topick_spatten::{simulate_generation, CascadeState, SpattenConfig, TopKAttention};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The cascade keep-ratio schedule is monotone non-increasing in layer.
    #[test]
    fn keep_ratio_monotone(ratio in 0.05f64..1.0, ramp in 0usize..16) {
        let cfg = SpattenConfig::new(ratio, ramp);
        let mut prev = 1.0 + 1e-12;
        for layer in 0..24 {
            let r = cfg.keep_ratio_at(layer);
            prop_assert!(r <= prev + 1e-12);
            prop_assert!(r >= ratio - 1e-12);
            prev = r;
        }
    }

    /// prune_to never removes more than requested and keeps the top-ranked
    /// tokens by cumulative importance.
    #[test]
    fn prune_to_respects_count(
        scores in prop::collection::vec(0.0f64..1.0, 2..64),
        keep_frac in 0.1f64..1.0,
    ) {
        let n = scores.len();
        let mut st = CascadeState::new(n);
        st.accumulate(&scores);
        let keep = ((n as f64) * keep_frac).ceil() as usize;
        st.prune_to(keep);
        prop_assert_eq!(st.active_count(), keep.min(n));
        // Every surviving token outranks (or ties) every pruned token.
        let active: std::collections::HashSet<usize> =
            st.active_tokens().into_iter().collect();
        let min_kept = st
            .active_tokens()
            .iter()
            .map(|&t| scores[t])
            .fold(f64::INFINITY, f64::min);
        for (t, &s) in scores.iter().enumerate() {
            if !active.contains(&t) {
                prop_assert!(s <= min_kept + 1e-12);
            }
        }
    }

    /// Access counts are bounded by the baseline and exact at ratio 1.0.
    #[test]
    fn access_bounded_by_baseline(
        ratio in 0.05f64..1.0,
        prompt in 4usize..48,
        steps in 1usize..8,
    ) {
        let cfg = SpattenConfig::new(ratio, 2);
        let acc = simulate_generation(&cfg, prompt, steps, 3, 2, 16, |s, l, h, toks| {
            toks.iter()
                .map(|&t| ((t * 31 + s * 7 + l * 3 + h) % 13) as f64 * 0.2)
                .collect()
        });
        prop_assert!(acc.k_bits <= acc.baseline_k_bits);
        prop_assert!(acc.v_bits <= acc.baseline_v_bits);
        prop_assert!(acc.normalized() <= 1.0 + 1e-12);
    }

    /// The top-k kernel always keeps ceil(ratio * n) tokens.
    #[test]
    fn topk_kernel_count_exact(n in 1usize..64, ratio in 0.05f64..1.0) {
        use topick_model::{AttentionBackend, HeadCache};
        let mut cache = HeadCache::new(2);
        for i in 0..n {
            cache.push(&[i as f32, 1.0], &[1.0, 0.0]);
        }
        let mut kernel = TopKAttention::new(ratio);
        let _ = kernel.attend(&[1.0, 0.5], cache.view());
        let kept = kernel.accumulated_stats().expect("stats").kept;
        prop_assert_eq!(kept, ((n as f64) * ratio).ceil() as usize);
    }
}
